(** Tests for the [daenerys serve] subsystem: the JSON wire format,
    the request protocol, the fair FIFO-per-client scheduler, the
    two-tier (memory + disk) VC/verdict cache, and the daemon
    end-to-end over a real Unix-domain socket.

    The end-to-end properties mirror the PR's acceptance criteria:

    - concurrent clients get verdicts identical to a sequential run;
    - a repeat request for an unchanged program is served from the
      cache with {e no} solver work (the report's [queries] is 0), in
      this daemon generation or — via the disk tier — the next;
    - corrupt or truncated cache entries are evicted and re-solved,
      never trusted;
    - a full queue degrades to explicit [busy] responses;
    - injected socket/cache faults may slow responses down but never
      flip a verdict;
    - shutdown drains accepted work before acking. *)

module V = Verifier.Exec
module Pr = Suite.Programs
module E = Engine
module VC = Engine.Vc_cache
module F = Stdx.Fault
module J = Server.Json
module P = Server.Protocol
module R = Server.Render

(* Locating the example files: tests run in [_build/default/test], the
   dune deps put the sources next door in [../examples]. *)
let examples_dir =
  let rec find d fuel =
    let cand = Filename.concat d "examples" in
    if Sys.file_exists (Filename.concat cand "swap.hl") then cand
    else if fuel = 0 then Alcotest.fail "examples/ directory not found"
    else find (Filename.concat d Filename.parent_dir_name) (fuel - 1)
  in
  find (Sys.getcwd ()) 5

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let temp_dir () =
  let d = Filename.temp_file "daetest" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Num 0.0;
      J.Num (-42.0);
      J.Num 3.5;
      J.Str "";
      J.Str "plain";
      J.Str "esc \" \\ \n \t \r quote";
      J.List [ J.Num 1.0; J.Str "two"; J.Null ];
      J.Obj
        [
          ("a", J.Num 1.0);
          ("nested", J.Obj [ ("b", J.List [ J.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      match J.parse (J.to_string v) with
      | Ok v' ->
          Alcotest.(check string)
            "reprint equal" (J.to_string v) (J.to_string v')
      | Error m -> Alcotest.failf "parse failed: %s" m)
    cases

let test_json_errors () =
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "expected parse error on %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "{\"a\":1}x" ]

let test_json_unicode () =
  match J.parse "\"a\\u00e9b\"" with
  | Ok (J.Str s) -> Alcotest.(check string) "utf8 decode" "a\xc3\xa9b" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape"

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_roundtrip () =
  let check_req line k =
    match P.request_of_line line with
    | Ok r -> k r
    | Error m -> Alcotest.failf "parse %S: %s" line m
  in
  check_req
    (J.to_string
       (P.verify_request ~id:(J.Num 7.0) ~lint:true ~absint:false ~seed:11
          ~timeout_ms:250.0 ~retries:2 (P.Entry "swap")))
    (function
      | P.Verify { id = J.Num 7.0; target = P.Entry "swap"; lint = true;
                   absint = false; seed = 11; timeout_ms = Some 250.0;
                   retries = Some 2 } ->
          ()
      | _ -> Alcotest.fail "verify fields");
  check_req (J.to_string (P.verify_request (P.Entry "swap"))) (function
    | P.Verify { seed = 0; _ } -> ()
    | _ -> Alcotest.fail "seed defaults to 0");
  check_req
    (J.to_string
       (P.verify_request (P.Source { file = "f.hl"; source = "src" })))
    (function
      | P.Verify { target = P.Source { file = "f.hl"; source = "src" }; _ }
        ->
          ()
      | _ -> Alcotest.fail "source target");
  check_req (J.to_string (P.stats_request ~id:(J.Str "s") ())) (function
    | P.Stats { id = J.Str "s" } -> ()
    | _ -> Alcotest.fail "stats");
  check_req (J.to_string (P.shutdown_request ())) (function
    | P.Shutdown _ -> ()
    | _ -> Alcotest.fail "shutdown")

let test_protocol_errors () =
  List.iter
    (fun line ->
      match P.request_of_line line with
      | Ok _ -> Alcotest.failf "expected request error on %S" line
      | Error _ -> ())
    [
      "not json";
      "{}";
      "{\"op\":\"frobnicate\"}";
      "{\"op\":\"verify\"}";
      "{\"op\":\"verify\",\"name\":\"a\",\"source\":\"b\"}";
    ]

(* ------------------------------------------------------------------ *)
(* Scheduler *)

type gate = { gm : Mutex.t; gc : Condition.t; mutable opened : bool }

let gate () = { gm = Mutex.create (); gc = Condition.create (); opened = false }

let wait_gate g =
  Mutex.protect g.gm (fun () ->
      while not g.opened do
        Condition.wait g.gc g.gm
      done)

let open_gate g =
  Mutex.protect g.gm (fun () ->
      g.opened <- true;
      Condition.broadcast g.gc)

let test_scheduler_fifo_fair () =
  let s = Server.Scheduler.create ~bound:16 ~workers:1 () in
  let g = gate () in
  let started = Atomic.make false in
  let lm = Mutex.create () in
  let log = ref [] in
  let record x () = Mutex.protect lm (fun () -> log := x :: !log) in
  (* Hold the single worker on a blocker so the later submissions are
     all queued before anything runs — the drain order is then fully
     determined by the scheduling policy. *)
  (match
     Server.Scheduler.submit s ~cid:0 (fun () ->
         Atomic.set started true;
         wait_gate g)
   with
  | `Accepted -> ()
  | _ -> Alcotest.fail "blocker rejected");
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  List.iter
    (fun (cid, x) ->
      match Server.Scheduler.submit s ~cid (record x) with
      | `Accepted -> ()
      | _ -> Alcotest.failf "submit %s rejected" x)
    [ (1, "a1"); (1, "a2"); (1, "a3"); (2, "b1"); (2, "b2") ];
  open_gate g;
  Server.Scheduler.shutdown s;
  Server.Scheduler.wait s;
  (* Round-robin across clients, FIFO within each: client 1 and 2
     alternate, a-tasks and b-tasks each in submission order. *)
  Alcotest.(check (list string))
    "fair round-robin, FIFO per client"
    [ "a1"; "b1"; "a2"; "b2"; "a3" ]
    (List.rev !log);
  let st = Server.Scheduler.stats s in
  Alcotest.(check int) "completed" 6 st.Server.Scheduler.completed;
  Alcotest.(check int) "no failures" 0 st.Server.Scheduler.task_failures

let test_scheduler_backpressure () =
  let s = Server.Scheduler.create ~bound:1 ~workers:1 () in
  let g = gate () in
  let started = Atomic.make false in
  ignore
    (Server.Scheduler.submit s ~cid:0 (fun () ->
         Atomic.set started true;
         wait_gate g));
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let accept r = match r with `Accepted -> true | _ -> false in
  Alcotest.(check bool)
    "first fits the bound" true
    (accept (Server.Scheduler.submit s ~cid:1 (fun () -> ())));
  Alcotest.(check bool)
    "second is rejected, not buffered" false
    (accept (Server.Scheduler.submit s ~cid:1 (fun () -> ())));
  (* Backpressure is per client: another client still gets in. *)
  Alcotest.(check bool)
    "other client unaffected" true
    (accept (Server.Scheduler.submit s ~cid:2 (fun () -> ())));
  open_gate g;
  Server.Scheduler.shutdown s;
  Server.Scheduler.wait s;
  let st = Server.Scheduler.stats s in
  Alcotest.(check int) "one rejection" 1 st.Server.Scheduler.rejected;
  Alcotest.(check int) "accepted all ran" 3 st.Server.Scheduler.completed

let test_scheduler_drain () =
  let s = Server.Scheduler.create ~bound:64 ~workers:3 () in
  let n = Atomic.make 0 in
  for i = 1 to 20 do
    match Server.Scheduler.submit s ~cid:(i mod 4) (fun () -> Atomic.incr n) with
    | `Accepted -> ()
    | _ -> Alcotest.fail "submit rejected"
  done;
  Server.Scheduler.shutdown s;
  Server.Scheduler.wait s;
  Alcotest.(check int) "every accepted task ran" 20 (Atomic.get n);
  (match Server.Scheduler.submit s ~cid:0 (fun () -> ()) with
  | `Stopping -> ()
  | _ -> Alcotest.fail "submit after shutdown must report Stopping");
  let st = Server.Scheduler.stats s in
  Alcotest.(check int) "completed = submitted" st.Server.Scheduler.submitted
    st.Server.Scheduler.completed

(* ------------------------------------------------------------------ *)
(* The two-tier cache *)

let unsat : Smt.Solver.result = Smt.Solver.Unsat

let test_cache_disk_tier () =
  let dir = temp_dir () in
  let c1 = VC.create ~disk_dir:dir ~fingerprint:"fp" () in
  VC.store c1 "vc-a" unsat;
  Alcotest.(check bool) "memory hit" true (VC.lookup c1 "vc-a" = Some unsat);
  Alcotest.(check int) "mem hit counted" 1 (VC.hits c1);
  (* A fresh instance over the same directory: the disk tier answers,
     and the hit is promoted so the next probe is a memory hit. *)
  let c2 = VC.create ~disk_dir:dir ~fingerprint:"fp" () in
  Alcotest.(check bool) "disk hit" true (VC.lookup c2 "vc-a" = Some unsat);
  Alcotest.(check int) "disk hit counted" 1 (VC.disk_hits c2);
  Alcotest.(check bool) "promoted" true (VC.lookup c2 "vc-a" = Some unsat);
  Alcotest.(check int) "promoted to memory" 1 (VC.hits c2);
  Alcotest.(check bool) "absent key misses" true (VC.lookup c2 "vc-b" = None);
  Alcotest.(check int) "miss counted" 1 (VC.misses c2)

let test_cache_corrupt_disk_evicted () =
  List.iter
    (fun mode ->
      let dir = temp_dir () in
      let c1 = VC.create ~disk_dir:dir ~fingerprint:"fp" () in
      VC.store c1 "vc-a" unsat;
      let c2 = VC.create ~disk_dir:dir ~fingerprint:"fp" () in
      Alcotest.(check bool)
        "corruption applied" true
        (VC.corrupt_disk_entry ~mode c2 "vc-a");
      Alcotest.(check bool)
        "corrupt entry not trusted" true
        (VC.lookup c2 "vc-a" = None);
      Alcotest.(check int) "counted corrupt" 1 (VC.corrupt c2);
      Alcotest.(check int) "evicted from disk" 0 (VC.disk_entries c2);
      (* The slot is reusable: a re-solve repopulates both tiers. *)
      VC.store c2 "vc-a" unsat;
      Alcotest.(check bool) "recovered" true (VC.lookup c2 "vc-a" = Some unsat))
    [ `Flip; `Truncate ]

let test_cache_fingerprint_isolation () =
  let dir = temp_dir () in
  let c1 = VC.create ~disk_dir:dir ~fingerprint:"build-1" () in
  VC.store c1 "vc-a" unsat;
  (* A "rebuilt" verifier: same directory, different fingerprint — the
     old entry must not be replayed. *)
  let c2 = VC.create ~disk_dir:dir ~fingerprint:"build-2" () in
  Alcotest.(check bool)
    "stale build never replays" true
    (VC.lookup c2 "vc-a" = None);
  Alcotest.(check int) "counted as a miss" 1 (VC.misses c2);
  (* The original build still hits its own entries. *)
  let c3 = VC.create ~disk_dir:dir ~fingerprint:"build-1" () in
  Alcotest.(check bool)
    "original build unaffected" true
    (VC.lookup c3 "vc-a" = Some unsat)

let test_cache_lru_bound () =
  let dir = temp_dir () in
  let c = VC.create ~disk_dir:dir ~max_bytes:300 ~fingerprint:"fp" () in
  for i = 1 to 6 do
    VC.store c (Printf.sprintf "vc-%d" i) unsat
  done;
  Alcotest.(check bool)
    (Printf.sprintf "disk stays bounded (%d bytes)" (VC.disk_bytes c))
    true
    (VC.disk_bytes c <= 300);
  Alcotest.(check bool) "something was evicted" true (VC.disk_entries c < 6);
  (* LRU: the most recent store survives, the oldest went first. A
     fresh instance sees only what is on disk. *)
  let c' = VC.create ~disk_dir:dir ~max_bytes:300 ~fingerprint:"fp" () in
  Alcotest.(check bool) "newest survives" true (VC.lookup c' "vc-6" = Some unsat);
  Alcotest.(check bool) "oldest evicted" true (VC.lookup c' "vc-1" = None)

let test_cache_crash_recovery () =
  let dir = temp_dir () in
  let write path s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  (* Store one entry first so its on-disk name is observable, then a
     second survivor. *)
  let c1 = VC.create ~disk_dir:dir ~fingerprint:"fp" () in
  VC.store c1 "vc-dead" unsat;
  let dead_file =
    match
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".vc")
    with
    | [ f ] -> f
    | fs -> Alcotest.failf "expected one entry, found %d" (List.length fs)
  in
  VC.store c1 "vc-keep" unsat;
  (* Fabricate the three kinds of kill -9 wreckage: a torn entry (the
     publication rename happened but the bytes are garbage — simulating
     a torn page), a temp file whose writer pid is long dead, and an
     eviction journal whose deletes never ran. *)
  write (Filename.concat dir (String.make 32 'a' ^ ".vc")) "DAEVC1\ngarbage";
  write (Filename.concat dir ".tmp.999999999.0") "half-written entry";
  write
    (Filename.concat dir "evict.999999999.0.journal")
    (Filename.chop_suffix dead_file ".vc" ^ "\n");
  (* The next generation over the same directory must absorb all of
     it: replay the journal, sweep the orphan, quarantine the torn
     entry — and still serve the intact survivor. *)
  let c2 = VC.create ~disk_dir:dir ~fingerprint:"fp" () in
  Alcotest.(check int) "journal replayed" 1 (VC.journal_replayed c2);
  Alcotest.(check bool)
    "condemned entry deleted" true
    (VC.lookup c2 "vc-dead" = None);
  Alcotest.(check int) "orphan tmp swept" 1 (VC.recovered_tmp c2);
  Alcotest.(check bool)
    "tmp gone" false
    (Sys.file_exists (Filename.concat dir ".tmp.999999999.0"));
  Alcotest.(check int) "torn entry quarantined" 1 (VC.recovered_torn c2);
  Alcotest.(check bool)
    "torn entry preserved for inspection" true
    (Sys.file_exists
       (Filename.concat
          (Filename.concat dir "quarantine")
          (String.make 32 'a' ^ ".vc")));
  Alcotest.(check bool)
    "survivor still served" true
    (VC.lookup c2 "vc-keep" = Some unsat)

let test_cache_disk_fault_crash_window () =
  (* The [disk] fault site models kill -9 inside the publication
     window: the temp file is written, the rename never happens. *)
  let dir = temp_dir () in
  F.configure ~seed:1 [ (F.Disk, 1.0) ];
  Fun.protect ~finally:F.clear (fun () ->
      let c = VC.create ~disk_dir:dir ~fingerprint:"fp" () in
      VC.store c "vc-a" unsat;
      (* The memory tier still answers this instance... *)
      Alcotest.(check bool) "memory tier intact" true
        (VC.lookup c "vc-a" = Some unsat));
  let files () = Sys.readdir dir |> Array.to_list in
  Alcotest.(check bool)
    "nothing was published" true
    (not (List.exists (fun f -> Filename.check_suffix f ".vc") (files ())));
  Alcotest.(check bool)
    "tmp litter left behind" true
    (List.exists (fun f -> String.starts_with ~prefix:".tmp." f) (files ()));
  (* While the writer is alive, recovery must NOT sweep its temp file
     (it may be mid-publication right now). *)
  let c_live = VC.create ~disk_dir:dir ~fingerprint:"fp" () in
  Alcotest.(check int) "live writer's tmp respected" 0
    (VC.recovered_tmp c_live);
  (* Once the writer is dead — simulate by renaming to a dead pid —
     the litter is swept and the store is an honest miss. *)
  List.iter
    (fun f ->
      if String.starts_with ~prefix:".tmp." f then
        Sys.rename (Filename.concat dir f) (Filename.concat dir ".tmp.999999999.7"))
    (files ());
  let c2 = VC.create ~disk_dir:dir ~fingerprint:"fp" () in
  Alcotest.(check int) "dead writer's litter swept" 1 (VC.recovered_tmp c2);
  Alcotest.(check bool)
    "the unpublished store is a miss" true
    (VC.lookup c2 "vc-a" = None)

let test_verdict_tier () =
  let c = VC.create () in
  let good = [ ("p", V.Verified); ("q", V.Failed "bad") ] in
  VC.store_verdicts c "prog-1" good;
  (match VC.lookup_verdicts c "prog-1" with
  | Some (v, `Memory) ->
      Alcotest.(check bool) "verdicts round-trip" true (v = good)
  | _ -> Alcotest.fail "verdict lookup");
  (* Abstentions are budget-dependent; they must never be replayed. *)
  VC.store_verdicts c "prog-2" [ ("p", V.Timeout "deadline") ];
  Alcotest.(check bool)
    "abstentions not cached" true
    (VC.lookup_verdicts c "prog-2" = None);
  (* Verdict keys live in their own namespace: a VC entry under the
     same bytes is a different slot. *)
  VC.store c "prog-1" unsat;
  (match VC.lookup_verdicts c "prog-1" with
  | Some (v, _) -> Alcotest.(check bool) "namespaced" true (v = good)
  | None -> Alcotest.fail "namespace collision")

(* ------------------------------------------------------------------ *)
(* End-to-end: a live daemon on a real socket *)

let next_id = ref 0

let fresh_paths () =
  incr next_id;
  let base = Printf.sprintf "dsrv-%d-%d" (Unix.getpid ()) !next_id in
  let dir = Filename.get_temp_dir_name () in
  (Filename.concat dir (base ^ ".sock"), Filename.concat dir (base ^ ".cache"))

let connect path =
  match Server.Client.connect_retry ~attempts:100 ~delay:0.05 path with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect %s: %s" path m

let rpc c req =
  match Server.Client.rpc c req with
  | Ok v -> v
  | Error m -> Alcotest.failf "rpc: %s" m

let get_bool resp k = Option.value ~default:false (J.bool_member k resp)

let get_str resp k =
  match J.str_member k resp with
  | Some s -> s
  | None -> Alcotest.failf "response missing %S: %s" k (J.to_string resp)

(** A stat out of the response's embedded [--json] report document. *)
let report_stat resp k =
  match Option.bind (J.member "report" resp) (J.member "stats") with
  | Some st -> Option.value ~default:(-1) (J.int_member k st)
  | None -> -1

(** Run [f] against a fresh daemon; always joins the daemon domain (so
    no test leaks a listener into the next). [f] may shut the daemon
    down itself — the finalizer's extra shutdown then just fails to
    connect and is ignored. *)
let with_daemon cfg f =
  let dom = Domain.spawn (fun () -> Server.Daemon.run cfg) in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      (if not !finished then
         (* Retry the connect too: if [f] failed before the daemon
            finished binding, a one-shot connect would miss, skip the
            shutdown, and leave the join below waiting forever. *)
         match
           Server.Client.connect_retry ~attempts:100 ~delay:0.05
             cfg.Server.Daemon.socket_path
         with
         | Ok c ->
             (* Under chaos testing an injected socket fault can garble
                the shutdown request itself (the daemon answers with an
                error and keeps serving), so retry until acknowledged —
                otherwise the join below waits forever. *)
             let rec shut attempts =
               if attempts > 0 then
                 match Server.Client.rpc c (P.shutdown_request ()) with
                 | Ok resp when get_bool resp "ok" -> ()
                 | Ok _ | Error _ -> shut (attempts - 1)
             in
             (try shut 50 with _ -> ());
             Server.Client.close c
         | Error _ -> ());
      match Domain.join dom with
      | Ok () -> ()
      | Error m -> Alcotest.failf "daemon failed: %s" m)
    (fun () ->
      let r = f () in
      finished := false;
      r)

(** Ground truth: the sequential CLI path (no shared cache installed,
    so it cannot interfere with a live daemon's hook). *)
let sequential_statuses () =
  let report =
    E.verify_programs
      ~config:{ E.default_config with E.cache = false }
      (List.map (fun (e : Pr.entry) -> (e.name, e.prog)) Pr.all)
  in
  List.map2
    (fun (e : Pr.entry) g ->
      (e.name, R.status_string (R.entry_status ~expect_fail:e.expect_fail g)))
    Pr.all report.E.groups

let test_e2e_concurrent_matches_sequential () =
  let expected = sequential_statuses () in
  let sock, _ = fresh_paths () in
  let cfg =
    { Server.Daemon.default_config with socket_path = sock; workers = 3 }
  in
  with_daemon cfg (fun () ->
      let run_client () =
        let c = connect sock in
        Fun.protect
          ~finally:(fun () -> Server.Client.close c)
          (fun () ->
            List.map
              (fun (e : Pr.entry) ->
                let resp = rpc c (P.verify_request (P.Entry e.name)) in
                Alcotest.(check bool)
                  (e.name ^ " ok") true (get_bool resp "ok");
                (e.name, get_str resp "status"))
              Pr.all)
      in
      let doms = List.init 3 (fun _ -> Domain.spawn run_client) in
      let results = List.map Domain.join doms in
      List.iter
        (fun statuses ->
          Alcotest.(check (list (pair string string)))
            "concurrent verdicts = sequential verdicts" expected statuses)
        results)

let test_e2e_warm_cache () =
  let sock, _ = fresh_paths () in
  let cfg = { Server.Daemon.default_config with socket_path = sock } in
  with_daemon cfg (fun () ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let r1 = rpc c (P.verify_request (P.Entry "count")) in
          Alcotest.(check bool) "cold is not cached" false (get_bool r1 "cached");
          let r2 = rpc c (P.verify_request (P.Entry "count")) in
          Alcotest.(check bool) "repeat is cached" true (get_bool r2 "cached");
          Alcotest.(check string)
            "verdict unchanged" (get_str r1 "status") (get_str r2 "status");
          (* The acceptance criterion: no solver work on the warm path. *)
          Alcotest.(check int) "no solver queries" 0 (report_stat r2 "queries");
          Alcotest.(check int) "one cache hit" 1 (report_stat r2 "cache_hits");
          Alcotest.(check int) "no misses" 0 (report_stat r2 "cache_misses")))

let test_e2e_disk_cache_survives_restart () =
  let sock, cache_dir = fresh_paths () in
  let cfg =
    {
      Server.Daemon.default_config with
      socket_path = sock;
      cache_dir = Some cache_dir;
    }
  in
  let expected = sequential_statuses () in
  (* Generation 1: populate the disk tier. *)
  with_daemon cfg (fun () ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          List.iter
            (fun (e : Pr.entry) ->
              ignore (rpc c (P.verify_request (P.Entry e.name))))
            Pr.all));
  (* Generation 2: same directory, fresh process-state — every request
     must be answered from disk with zero solver work. *)
  with_daemon cfg (fun () ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          List.iter
            (fun (e : Pr.entry) ->
              let resp = rpc c (P.verify_request (P.Entry e.name)) in
              Alcotest.(check bool)
                (e.name ^ " served from cache across restart") true
                (get_bool resp "cached");
              Alcotest.(check int)
                (e.name ^ " no solver work") 0 (report_stat resp "queries");
              Alcotest.(check string)
                (e.name ^ " verdict stable")
                (List.assoc e.name expected)
                (get_str resp "status"))
            Pr.all;
          let stats = rpc c (P.stats_request ()) in
          match Option.bind (J.member "stats" stats) (J.member "cache") with
          | Some cache ->
              let disk_hits =
                Option.value ~default:0 (J.int_member "disk_hits" cache)
              in
              Alcotest.(check bool)
                (Printf.sprintf "disk hits reported (%d)" disk_hits)
                true (disk_hits >= List.length Pr.all)
          | None -> Alcotest.fail "stats response missing cache block"))

let test_e2e_corrupt_disk_entries_reverified () =
  let sock, cache_dir = fresh_paths () in
  let cfg =
    {
      Server.Daemon.default_config with
      socket_path = sock;
      cache_dir = Some cache_dir;
    }
  in
  let expected = sequential_statuses () in
  with_daemon cfg (fun () ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          List.iter
            (fun (e : Pr.entry) ->
              ignore (rpc c (P.verify_request (P.Entry e.name))))
            Pr.all));
  (* Flip a byte in the middle of every stored entry. *)
  let files = Sys.readdir cache_dir in
  Alcotest.(check bool) "entries were persisted" true (Array.length files > 0);
  Array.iter
    (fun f ->
      let path = Filename.concat cache_dir f in
      let bytes = Bytes.of_string (read_file path) in
      let i = Bytes.length bytes / 2 in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc)
    files;
  with_daemon cfg (fun () ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          List.iter
            (fun (e : Pr.entry) ->
              let resp = rpc c (P.verify_request (P.Entry e.name)) in
              (* Corruption degrades to a re-verify; it never flips a
                 verdict and is never trusted. *)
              Alcotest.(check bool)
                (e.name ^ " corrupt entry not replayed") false
                (get_bool resp "cached");
              Alcotest.(check string)
                (e.name ^ " verdict correct after corruption")
                (List.assoc e.name expected)
                (get_str resp "status"))
            Pr.all))

let test_e2e_busy_backpressure () =
  let sock, _ = fresh_paths () in
  (* A zero-length queue rejects every submission — deterministic
     backpressure without having to race a saturated worker pool. *)
  let cfg =
    { Server.Daemon.default_config with socket_path = sock; queue_bound = 0 }
  in
  with_daemon cfg (fun () ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let resp = rpc c (P.verify_request (P.Entry "swap")) in
          Alcotest.(check bool) "rejected" false (get_bool resp "ok");
          Alcotest.(check bool) "flagged busy" true (get_bool resp "busy");
          (* Cheap requests bypass the queue and still work. *)
          let stats = rpc c (P.stats_request ()) in
          Alcotest.(check bool) "stats still served" true (get_bool stats "ok")))

let test_e2e_faults_never_flip_verdicts () =
  let expected = sequential_statuses () in
  let sock, cache_dir = fresh_paths () in
  let cfg =
    {
      Server.Daemon.default_config with
      socket_path = sock;
      cache_dir = Some cache_dir;
    }
  in
  F.configure ~seed:11 [ (F.Socket, 0.25); (F.Cache, 0.25) ];
  Fun.protect ~finally:F.clear (fun () ->
      with_daemon cfg (fun () ->
          let c = connect sock in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              let rec verify name attempts =
                if attempts = 0 then
                  Alcotest.failf "%s: daemon never recovered" name
                else
                  let resp = rpc c (P.verify_request (P.Entry name)) in
                  if get_bool resp "ok" then resp
                  else begin
                    (* An injected fault degraded this request to an
                       error response; retrying is the contract. *)
                    Alcotest.(check bool)
                      "errors carry a message" true
                      (J.str_member "error" resp <> None);
                    verify name (attempts - 1)
                  end
              in
              for _round = 1 to 3 do
                List.iter
                  (fun (e : Pr.entry) ->
                    let resp = verify e.name 50 in
                    Alcotest.(check string)
                      (e.name ^ " verdict under faults")
                      (List.assoc e.name expected)
                      (get_str resp "status"))
                  Pr.all
              done)))

let test_e2e_shutdown_drains_in_flight () =
  let sock, _ = fresh_paths () in
  let cfg = { Server.Daemon.default_config with socket_path = sock } in
  let dom = Domain.spawn (fun () -> Server.Daemon.run cfg) in
  let c = connect sock in
  (* Pipeline three verifies and a shutdown without reading anything:
     the daemon must answer all three (in order) before the ack. *)
  let names = [ "swap"; "count"; "bad_swap" ] in
  List.iteri
    (fun i n ->
      Server.Client.send c
        (P.verify_request ~id:(J.Num (float_of_int i)) (P.Entry n)))
    names;
  Server.Client.send c (P.shutdown_request ~id:(J.Str "bye") ());
  List.iteri
    (fun i n ->
      match Server.Client.recv c with
      | Error m -> Alcotest.failf "response %d: %s" i m
      | Ok resp ->
          Alcotest.(check bool) (n ^ " answered before ack") true
            (get_bool resp "ok");
          Alcotest.(check int)
            (n ^ " in submission order") i
            (Option.value ~default:(-1) (J.int_member "id" resp)))
    names;
  (match Server.Client.recv c with
  | Ok resp ->
      Alcotest.(check bool) "ack last" true (get_bool resp "shutdown")
  | Error m -> Alcotest.failf "ack: %s" m);
  Server.Client.close c;
  match Domain.join dom with
  | Ok () -> ()
  | Error m -> Alcotest.failf "daemon failed: %s" m

let test_e2e_inline_source () =
  let sock, _ = fresh_paths () in
  let cfg = { Server.Daemon.default_config with socket_path = sock } in
  with_daemon cfg (fun () ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let source = read_file (Filename.concat examples_dir "swap.hl") in
          let target = P.Source { file = "swap.hl"; source } in
          let r1 = rpc c (P.verify_request target) in
          Alcotest.(check string) "inline source verifies" "ok"
            (get_str r1 "status");
          (* Same source again: keyed on content, so it hits. *)
          let r2 = rpc c (P.verify_request target) in
          Alcotest.(check bool) "inline repeat cached" true
            (get_bool r2 "cached");
          (* A front-end error comes back as an error response with the
             rendered message, never a verdict. *)
          let bad =
            P.Source { file = "bad.hl"; source = "procedure oops(" }
          in
          let r3 = rpc c (P.verify_request bad) in
          Alcotest.(check bool) "parse error rejected" false (get_bool r3 "ok")))

let test_e2e_lint () =
  let sock, _ = fresh_paths () in
  let cfg = { Server.Daemon.default_config with socket_path = sock } in
  with_daemon cfg (fun () ->
      let c = connect sock in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          let resp = rpc c (P.lint_request (P.Entry "swap")) in
          Alcotest.(check bool) "lint ok" true (get_bool resp "ok");
          Alcotest.(check int) "clean program" 0
            (Option.value ~default:(-1) (J.int_member "errors" resp));
          let source = read_file (Filename.concat examples_dir "broken.hl") in
          let resp =
            rpc c (P.lint_request (P.Source { file = "broken.hl"; source }))
          in
          Alcotest.(check bool) "lint of broken source ok" true
            (get_bool resp "ok");
          Alcotest.(check bool) "errors found" true
            (Option.value ~default:0 (J.int_member "errors" resp) > 0)))

(* ------------------------------------------------------------------ *)
(* Supervision: crash isolation, circuit breaking, watchdog
   preemption, overload shedding, slow clients, resilient clients,
   signals *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  go 0

(** Pull an int counter out of a nested stats response, e.g.
    [stat st [ "stats"; "supervisor" ] "crashes"]. *)
let stat resp path key =
  match
    List.fold_left (fun v k -> Option.bind v (J.member k)) (Some resp) path
  with
  | Some o -> Option.value ~default:(-1) (J.int_member key o)
  | None -> -1

let test_e2e_worker_crashes_isolated_and_breaker () =
  let sock, _ = fresh_paths () in
  let cfg =
    {
      Server.Daemon.default_config with
      socket_path = sock;
      breaker_threshold = 2;
      breaker_cooldown_ms = 400.0;
      recycle_after = 1;
    }
  in
  F.configure ~seed:3 [ (F.Worker, 1.0) ];
  Fun.protect ~finally:F.clear (fun () ->
      with_daemon cfg (fun () ->
          let c = connect sock in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              (* A crash escaping the whole handler fails only its own
                 request, as a structured retryable error. *)
              let r1 = rpc c (P.verify_request (P.Entry "swap")) in
              Alcotest.(check bool) "crash is an error response" false
                (get_bool r1 "ok");
              Alcotest.(check bool) "crash is retryable" true
                (get_bool r1 "retryable");
              Alcotest.(check bool) "crash is named" true
                (contains (get_str r1 "error") "worker crashed");
              let r2 = rpc c (P.verify_request (P.Entry "swap")) in
              Alcotest.(check bool) "second crash isolated too" false
                (get_bool r2 "ok");
              (* Two consecutive crashes of the same digest: the
                 breaker opens — the third submission is rejected
                 without being fed to a worker. *)
              let r3 = rpc c (P.verify_request (P.Entry "swap")) in
              Alcotest.(check bool) "quarantined" true
                (contains (get_str r3 "error") "quarantined");
              Alcotest.(check bool) "quarantine carries retry-after" true
                (J.num_member "retry_after_ms" r3 <> None);
              (* A different digest is its own circuit: admitted (and
                 crashing on its own count). *)
              let r4 = rpc c (P.verify_request (P.Entry "count")) in
              Alcotest.(check bool) "other digest admitted" true
                (contains (get_str r4 "error") "worker crashed");
              (* Crashes stop; the cooldown elapses; the half-open
                 probe closes the circuit with a correct verdict. *)
              F.clear ();
              Unix.sleepf 0.45;
              let r5 = rpc c (P.verify_request (P.Entry "swap")) in
              Alcotest.(check bool) "half-open probe succeeds" true
                (get_bool r5 "ok");
              Alcotest.(check string) "verdict intact after crashes" "ok"
                (get_str r5 "status");
              (* The repair left its audit trail. *)
              let st = rpc c (P.stats_request ()) in
              let sup k = stat st [ "stats"; "supervisor" ] k in
              Alcotest.(check bool) "crashes counted" true (sup "crashes" >= 3);
              Alcotest.(check bool) "breaker tripped" true
                (sup "breaker_trips" >= 1);
              Alcotest.(check bool) "breaker rejected" true
                (sup "breaker_rejects" >= 1);
              Alcotest.(check bool)
                "crashed workers were recycled (recycle_after = 1)" true
                (sup "respawns" >= 1))))

let test_e2e_watchdog_preempts_stall () =
  let sock, _ = fresh_paths () in
  let cfg =
    {
      Server.Daemon.default_config with
      socket_path = sock;
      watchdog_ms = Some 60.0;
      watchdog_grace = 1.0;
    }
  in
  (* A stall is a worker that stops polling its budget entirely: only
     the watchdog's hard stage gets the domain's slot back. *)
  F.configure ~seed:5 [ (F.Stall, 1.0) ];
  Fun.protect ~finally:F.clear (fun () ->
      with_daemon cfg (fun () ->
          let c = connect sock in
          Fun.protect
            ~finally:(fun () -> Server.Client.close c)
            (fun () ->
              let r1 = rpc c (P.verify_request (P.Entry "swap")) in
              Alcotest.(check bool) "stalled request answered" false
                (get_bool r1 "ok");
              Alcotest.(check bool) "preemption is retryable" true
                (get_bool r1 "retryable");
              Alcotest.(check bool) "preemption is named" true
                (contains (get_str r1 "error") "preempted");
              (* The wedged domain was written off and replaced: the
                 daemon keeps serving, with correct verdicts. *)
              F.clear ();
              let r2 = rpc c (P.verify_request (P.Entry "swap")) in
              Alcotest.(check bool) "respawned worker serves" true
                (get_bool r2 "ok");
              Alcotest.(check string) "verdict intact after stall" "ok"
                (get_str r2 "status");
              let st = rpc c (P.stats_request ()) in
              let sup k = stat st [ "stats"; "supervisor" ] k in
              Alcotest.(check bool) "stall injected" true (sup "stalls" >= 1);
              Alcotest.(check bool) "preemption counted" true
                (sup "preempted" >= 1);
              Alcotest.(check bool) "incarnation abandoned" true
                (sup "abandoned" >= 1);
              Alcotest.(check bool) "slot respawned" true
                (sup "respawns" >= 1);
              Alcotest.(check bool) "watchdog abandon stage fired" true
                (stat st [ "stats"; "supervisor"; "watchdog" ] "abandons"
                >= 1))))

let test_e2e_overload_sheds_and_degrades () =
  let sock, _ = fresh_paths () in
  let cfg =
    {
      Server.Daemon.default_config with
      socket_path = sock;
      workers = 1;
      max_inflight = 1;
      watchdog_ms = Some 800.0;
      watchdog_grace = 1.0;
    }
  in
  with_daemon cfg (fun () ->
      let c1 = connect sock and c2 = connect sock in
      Fun.protect
        ~finally:(fun () ->
          Server.Client.close c1;
          Server.Client.close c2)
        (fun () ->
          (* Warm the verdict cache while capacity is free. *)
          let warm = rpc c2 (P.verify_request (P.Entry "swap")) in
          Alcotest.(check bool) "warm-up ok" true (get_bool warm "ok");
          (* Wedge the only worker on a stalled cold request; the
             watchdog will answer it in ~1.6s, which is our window. *)
          F.configure ~seed:7 [ (F.Stall, 1.0) ];
          Server.Client.send c1
            (P.verify_request ~id:(J.Num 1.0) (P.Entry "count"));
          let rec wait_stall n =
            if n = 0 then Alcotest.fail "stall never engaged"
            else
              let st = rpc c2 (P.stats_request ()) in
              if stat st [ "stats"; "supervisor" ] "stalls" < 1 then begin
                Unix.sleepf 0.01;
                wait_stall (n - 1)
              end
          in
          wait_stall 500;
          F.clear ();
          (* The global in-flight budget (1) is consumed: new solve
             work is shed with backpressure metadata... *)
          let shed = rpc c2 (P.verify_request (P.Entry "bad_swap")) in
          Alcotest.(check bool) "cold verify shed" true (get_bool shed "busy");
          Alcotest.(check bool) "shed carries retry-after" true
            (J.num_member "retry_after_ms" shed <> None);
          (* ...but requests that need no solver are still served
             inline: lint, and verify hits in the verdict cache. *)
          let l = rpc c2 (P.lint_request (P.Entry "swap")) in
          Alcotest.(check bool) "lint served under overload" true
            (get_bool l "ok");
          let hit = rpc c2 (P.verify_request (P.Entry "swap")) in
          Alcotest.(check bool) "verdict-cache hit served under overload"
            true (get_bool hit "ok");
          Alcotest.(check bool) "served from cache" true
            (get_bool hit "cached");
          (* The watchdog reclaims the wedged worker and answers c1. *)
          (match Server.Client.recv c1 with
          | Ok r ->
              Alcotest.(check bool) "stalled request preempted" true
                (contains (get_str r "error") "preempted")
          | Error m -> Alcotest.failf "stalled request: %s" m);
          (* Capacity restored: the shed request now runs. The slot is
             released when the abandoned incarnation actually unwinds,
             which can trail the preempt reply — so retry briefly. *)
          let rec until_ok n =
            let r = rpc c2 (P.verify_request (P.Entry "bad_swap")) in
            if get_bool r "ok" || n = 0 then r
            else begin
              Unix.sleepf 0.02;
              until_ok (n - 1)
            end
          in
          let r = until_ok 250 in
          Alcotest.(check bool) "capacity restored" true (get_bool r "ok");
          let st = rpc c2 (P.stats_request ()) in
          Alcotest.(check bool) "shed counted" true
            (stat st [ "stats"; "supervisor" ] "shed" >= 1);
          Alcotest.(check bool) "degraded service counted" true
            (stat st [ "stats"; "supervisor" ] "degraded_served" >= 2)))

let test_e2e_slowloris () =
  let sock, _ = fresh_paths () in
  let cfg =
    { Server.Daemon.default_config with socket_path = sock; workers = 1 }
  in
  with_daemon cfg (fun () ->
      (* The retrying connect doubles as "wait until the daemon is
         up": the raw socket below must not race the bind. *)
      let c = connect sock in
      (* A peer that dribbles its request a few bytes at a time — with
         long mid-line stalls — must not block anyone else. *)
      let slow = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          Server.Client.close c;
          try Unix.close slow with _ -> ())
        (fun () ->
          Unix.connect slow (Unix.ADDR_UNIX sock);
          let line =
            Server.Protocol.line
              (P.verify_request ~id:(J.Num 9.0) (P.Entry "swap"))
          in
          let half = String.length line / 2 in
          ignore (Unix.write_substring slow line 0 half);
          (* Mid-line stall in progress; a well-behaved client on
             another connection is served normally. *)
          let r = rpc c (P.verify_request (P.Entry "swap")) in
          Alcotest.(check bool)
            "fast client served while slow one dribbles" true
            (get_bool r "ok");
          (* Now finish the request one byte at a time; the buffered
             halves must reassemble into a served request. *)
          String.iter
            (fun ch -> ignore (Unix.write_substring slow (String.make 1 ch) 0 1))
            (String.sub line half (String.length line - half));
          let buf = Buffer.create 256 in
          let byte = Bytes.create 1 in
          let rec read_line () =
            match Unix.read slow byte 0 1 with
            | 0 -> Alcotest.fail "daemon closed on the slow client"
            | _ ->
                if Bytes.get byte 0 = '\n' then Buffer.contents buf
                else begin
                  Buffer.add_char buf (Bytes.get byte 0);
                  read_line ()
                end
          in
          match J.parse (read_line ()) with
          | Error m -> Alcotest.failf "slow client response: %s" m
          | Ok resp ->
              Alcotest.(check bool) "slow client's request served" true
                (get_bool resp "ok");
              Alcotest.(check int) "response correlated" 9
                (Option.value ~default:(-1) (J.int_member "id" resp))))

let test_e2e_client_session_retry () =
  (* Honest exit taxonomy: a dead daemon is [Unavailable] (gave up),
     never a judgement about the program. *)
  let dead_sock, _ = fresh_paths () in
  let quick =
    {
      Server.Client.attempts = 3;
      base_delay_ms = 1.0;
      max_delay_ms = 5.0;
    }
  in
  (match
     Server.Client.request
       (Server.Client.open_session ~retry:quick dead_sock)
       (P.stats_request ())
   with
  | Error (Server.Client.Unavailable _) -> ()
  | Ok _ -> Alcotest.fail "dead daemon must not answer"
  | Error (Server.Client.Fatal m) ->
      Alcotest.failf "dead daemon is not a judgement: %s" m);
  (* Under heavy socket faults, a retrying session converges to the
     fault-free verdicts — degradation costs retries, never truth. *)
  let expected = sequential_statuses () in
  let sock, _ = fresh_paths () in
  let cfg = { Server.Daemon.default_config with socket_path = sock } in
  F.configure ~seed:9 [ (F.Socket, 0.5) ];
  Fun.protect ~finally:F.clear (fun () ->
      with_daemon cfg (fun () ->
          let s =
            Server.Client.open_session
              ~retry:
                {
                  Server.Client.attempts = 50;
                  base_delay_ms = 1.0;
                  max_delay_ms = 10.0;
                }
              sock
          in
          Fun.protect
            ~finally:(fun () -> Server.Client.close_session s)
            (fun () ->
              List.iter
                (fun (e : Pr.entry) ->
                  match
                    Server.Client.request s (P.verify_request (P.Entry e.name))
                  with
                  | Ok resp ->
                      Alcotest.(check string)
                        (e.name ^ " verdict through retries")
                        (List.assoc e.name expected)
                        (get_str resp "status")
                  | Error (Server.Client.Fatal m)
                  | Error (Server.Client.Unavailable m) ->
                      Alcotest.failf "%s: session never converged: %s" e.name
                        m)
                (match Pr.all with a :: b :: c :: _ -> [ a; b; c ] | l -> l);
              (* A judgement is not retried into oblivion: unknown
                 entries come back [Fatal] once a request gets through. *)
              match
                Server.Client.request s (P.verify_request (P.Entry "nope"))
              with
              | Error (Server.Client.Fatal m) ->
                  Alcotest.(check bool) "named" true (contains m "unknown")
              | Ok _ -> Alcotest.fail "unknown entry must fail"
              | Error (Server.Client.Unavailable m) ->
                  Alcotest.failf "judgement misreported as outage: %s" m)))

let test_e2e_signals () =
  let sock, _ = fresh_paths () in
  let cfg = { Server.Daemon.default_config with socket_path = sock } in
  let dom = Domain.spawn (fun () -> Server.Daemon.run cfg) in
  let c = connect sock in
  (* A served request proves the loop is up (and so the handlers are
     installed — they are set before the loop starts). *)
  let r0 = rpc c (P.verify_request (P.Entry "swap")) in
  Alcotest.(check bool) "daemon up" true (get_bool r0 "ok");
  (* SIGHUP: a stats snapshot on stderr, no service interruption. *)
  Unix.kill (Unix.getpid ()) Sys.sighup;
  Unix.sleepf 0.1;
  let r1 = rpc c (P.verify_request (P.Entry "count")) in
  Alcotest.(check bool) "still serving after SIGHUP" true (get_bool r1 "ok");
  (* SIGTERM: graceful drain — the daemon exits cleanly with no
     shutdown request, removing its socket. *)
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  (match Domain.join dom with
  | Ok () -> ()
  | Error m -> Alcotest.failf "drain failed: %s" m);
  Alcotest.(check bool) "socket removed" false (Sys.file_exists sock);
  Server.Client.close c

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "unicode" `Quick test_json_unicode;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "fifo+fair" `Quick test_scheduler_fifo_fair;
          Alcotest.test_case "backpressure" `Quick test_scheduler_backpressure;
          Alcotest.test_case "drain" `Quick test_scheduler_drain;
        ] );
      ( "cache",
        [
          Alcotest.test_case "disk tier" `Quick test_cache_disk_tier;
          Alcotest.test_case "corrupt evicted" `Quick
            test_cache_corrupt_disk_evicted;
          Alcotest.test_case "fingerprint" `Quick
            test_cache_fingerprint_isolation;
          Alcotest.test_case "lru bound" `Quick test_cache_lru_bound;
          Alcotest.test_case "crash recovery" `Quick test_cache_crash_recovery;
          Alcotest.test_case "disk fault crash window" `Quick
            test_cache_disk_fault_crash_window;
          Alcotest.test_case "verdict tier" `Quick test_verdict_tier;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "concurrent = sequential" `Quick
            test_e2e_concurrent_matches_sequential;
          Alcotest.test_case "warm cache" `Quick test_e2e_warm_cache;
          Alcotest.test_case "disk cache survives restart" `Quick
            test_e2e_disk_cache_survives_restart;
          Alcotest.test_case "corrupt entries re-verified" `Quick
            test_e2e_corrupt_disk_entries_reverified;
          Alcotest.test_case "busy backpressure" `Quick
            test_e2e_busy_backpressure;
          Alcotest.test_case "faults never flip verdicts" `Quick
            test_e2e_faults_never_flip_verdicts;
          Alcotest.test_case "shutdown drains" `Quick
            test_e2e_shutdown_drains_in_flight;
          Alcotest.test_case "inline source" `Quick test_e2e_inline_source;
          Alcotest.test_case "lint" `Quick test_e2e_lint;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "worker crashes isolated + breaker" `Quick
            test_e2e_worker_crashes_isolated_and_breaker;
          Alcotest.test_case "watchdog preempts stall" `Quick
            test_e2e_watchdog_preempts_stall;
          Alcotest.test_case "overload sheds + degrades" `Quick
            test_e2e_overload_sheds_and_degrades;
          Alcotest.test_case "slowloris" `Quick test_e2e_slowloris;
          Alcotest.test_case "client session retry" `Quick
            test_e2e_client_session_retry;
          Alcotest.test_case "signals" `Quick test_e2e_signals;
        ] );
    ]
