(** Resilience tests: deadlines and cooperative cancellation, the
    budget/fuel taxonomy, graceful degradation (retries, session
    fallback, cache-corruption recovery), and chaos testing under the
    seeded fault-injection harness.

    The central soundness property, checked both directly and under
    randomized fault schedules: faults may *degrade* an outcome to
    Timeout / Resource_out / Crashed, but they can never flip a
    verdict — a Failed program never becomes Verified and vice
    versa. *)

module T = Smt.Term
module A = Baselogic.Assertion
module V = Verifier.Exec
module G = Suite.Generators
module Pr = Suite.Programs
module E = Engine
module B = Stdx.Budget
module F = Stdx.Fault

let outcome : V.outcome Alcotest.testable =
  Alcotest.testable (fun ppf o -> V.pp_outcome ppf o) ( = )

let proc_results = Alcotest.(list (pair string outcome))

(* A procedure whose single proof obligation is a pigeonhole instance:
   PHP(n) is unsat, so the precondition is contradictory and the proc
   is Verified — but only after the solver grinds through the
   exponential refutation. This is the deterministic "diverging VC"
   used to exercise deadlines. *)
let pigeonhole_proc n : V.program * V.proc =
  let proc =
    {
      V.pname = Printf.sprintf "php%d" n;
      params = [];
      requires = A.Pure (T.and_ (G.pigeonhole n));
      ensures = A.Pure T.fls;
      body = Heaplang.Ast.Val (Heaplang.Ast.Int 0);
      invariants = [];
      ghost = [];
    }
  in
  ({ V.procs = [ proc ]; preds = Stdx.Smap.empty; invs = [] }, proc)

let with_faults ?seed probs f =
  F.configure ?seed probs;
  Fun.protect ~finally:F.clear f

let engine_outcomes config progs =
  let report = E.verify_programs ~config progs in
  ( List.map (fun (g : E.group_result) -> (g.E.group, g.E.outcomes)) report.E.groups,
    report.E.stats )

let suite_progs entries =
  List.map (fun (e : Pr.entry) -> (e.name, e.prog)) entries

(* ------------------------------------------------------------------ *)
(* Budgets: deadlines, cancellation, fuel *)

let test_deadline_stops_divergence () =
  let t0 = Unix.gettimeofday () in
  (match
     B.with_budget
       (B.create ~timeout_ms:5.0 ())
       (fun () -> Smt.Solver.check_sat (G.pigeonhole 8))
   with
  | _ -> Alcotest.fail "PHP(8) under a 5ms deadline must not finish"
  | exception B.Exhausted (B.Deadline _) -> ()
  | exception B.Exhausted r ->
      Alcotest.failf "wrong exhaustion reason: %s" (B.reason_to_string r));
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "stopped promptly (%.0fms)" elapsed_ms)
    true (elapsed_ms < 2_000.0)

let test_cancellation () =
  let b = B.create () in
  B.cancel b;
  match B.with_budget b (fun () -> B.poll ()) with
  | () -> Alcotest.fail "poll under a cancelled budget must raise"
  | exception B.Exhausted B.Cancelled -> ()
  | exception B.Exhausted r ->
      Alcotest.failf "wrong exhaustion reason: %s" (B.reason_to_string r)

let test_parent_cancellation () =
  let parent = B.create () in
  let child = B.create ~parent () in
  B.cancel parent;
  Alcotest.(check bool)
    "child sees parent's cancellation" true
    (match B.check_now child with
    | () -> false
    | exception B.Exhausted B.Cancelled -> true)

let test_budget_child_never_outlives_parent () =
  (* A child may ask for a deadline far beyond its parent's; the chain
     makes the parent's earlier deadline win — per-job budgets can
     never escape a per-run limit. *)
  let parent = B.create ~timeout_ms:5.0 () in
  let child = B.create ~parent ~timeout_ms:3_600_000.0 () in
  Unix.sleepf 0.02;
  (match B.check_now child with
  | () -> Alcotest.fail "child outlived its exhausted parent"
  | exception B.Exhausted (B.Deadline ms) ->
      Alcotest.(check (float 0.001)) "the parent's limit is reported" 5.0 ms
  | exception B.Exhausted r ->
      Alcotest.failf "wrong exhaustion reason: %s" (B.reason_to_string r));
  (* And the converse composes too: a tight child under a roomy parent
     exhausts on its own deadline. *)
  let roomy = B.create ~timeout_ms:3_600_000.0 () in
  let tight = B.create ~parent:roomy ~timeout_ms:5.0 () in
  Unix.sleepf 0.02;
  match B.check_now tight with
  | () -> Alcotest.fail "tight child under roomy parent must exhaust"
  | exception B.Exhausted (B.Deadline ms) ->
      Alcotest.(check (float 0.001)) "the child's limit is reported" 5.0 ms
  | exception B.Exhausted r ->
      Alcotest.failf "wrong exhaustion reason: %s" (B.reason_to_string r)

let test_budget_zero_and_negative () =
  (* Degenerate deadlines must exhaust immediately and cleanly — a
     zero or negative budget is "no time at all", never "no limit". *)
  List.iter
    (fun ms ->
      let b = B.create ~timeout_ms:ms () in
      Unix.sleepf 0.002;
      match B.check_now b with
      | () -> Alcotest.failf "%gms budget never exhausted" ms
      | exception B.Exhausted (B.Deadline _) -> ()
      | exception B.Exhausted r ->
          Alcotest.failf "wrong exhaustion reason: %s" (B.reason_to_string r))
    [ 0.0; -1.0; -1_000.0 ];
  (* The cheap poll path reaches the same verdict within one clock
     window (mask + 1 calls). *)
  let b = B.create ~timeout_ms:0.0 () in
  Unix.sleepf 0.002;
  match
    B.with_budget b (fun () ->
        for _ = 0 to 2 * (255 + 1) do
          B.poll ()
        done)
  with
  | () -> Alcotest.fail "cheap polls must hit the dead deadline"
  | exception B.Exhausted (B.Deadline _) -> ()

let test_fuel_simplex () =
  Smt.Stats.reset ();
  let s = Smt.Simplex.create () in
  (match Smt.Simplex.check_int ~fuel:0 s with
  | Smt.Simplex.IResource_out -> ()
  | Smt.Simplex.IModel _ -> Alcotest.fail "zero fuel must not produce a model"
  | Smt.Simplex.IUnsat -> Alcotest.fail "zero fuel must not refute");
  Alcotest.(check bool)
    "fuel_simplex counted" true
    ((Smt.Stats.snapshot ()).Smt.Stats.fuel_simplex > 0)

let test_fuel_sat_conflicts () =
  Smt.Stats.reset ();
  let s = Smt.Sat.create () in
  let a = Smt.Sat.new_var s and b = Smt.Sat.new_var s in
  let pos v = Smt.Sat.lit_of_var v
  and neg v = Smt.Sat.lit_of_var ~neg:true v in
  ignore (Smt.Sat.add_clause s [ pos a; pos b ]);
  ignore (Smt.Sat.add_clause s [ neg a; pos b ]);
  ignore (Smt.Sat.add_clause s [ pos a; neg b ]);
  ignore (Smt.Sat.add_clause s [ neg a; neg b ]);
  (match Smt.Sat.solve ~max_conflicts:0 s with
  | Smt.Sat.Resource_out -> ()
  | Smt.Sat.Unsat -> Alcotest.fail "zero conflicts allowed must not refute"
  | Smt.Sat.Sat | Smt.Sat.Unknown -> Alcotest.fail "unsat instance reported sat");
  Alcotest.(check bool)
    "fuel_sat_conflicts counted" true
    ((Smt.Stats.snapshot ()).Smt.Stats.fuel_sat_conflicts > 0)

(* ------------------------------------------------------------------ *)
(* Jobs: timeout, escalated retry *)

let test_job_timeout () =
  let prog, proc = pigeonhole_proc 8 in
  let job = List.hd (E.Job.of_program ~group:"php" prog) in
  ignore proc;
  let r = E.Job.run ~timeout_ms:0.02 job in
  match r.E.Job.outcome with
  | V.Timeout _ -> Alcotest.(check int) "single attempt" 1 r.E.Job.attempts
  | o -> Alcotest.failf "expected Timeout, got %a" V.pp_outcome o

let test_job_retry_escalates_to_success () =
  let prog, _ = pigeonhole_proc 5 in
  let job = List.hd (E.Job.of_program ~group:"php" prog) in
  let r = E.Job.run ~timeout_ms:0.02 ~retries:8 job in
  (match r.E.Job.outcome with
  | V.Verified -> ()
  | o -> Alcotest.failf "expected Verified after escalation, got %a" V.pp_outcome o);
  Alcotest.(check bool)
    (Printf.sprintf "needed retries (attempts=%d)" r.E.Job.attempts)
    true
    (r.E.Job.attempts > 1)

(* A diverging job at -j4 times out inside its own deadline while its
   sibling jobs verify, unaffected. *)
let test_engine_timeout_isolates_siblings () =
  let slow_prog, _ = pigeonhole_proc 8 in
  let siblings =
    suite_progs
      (List.filteri (fun i (e : Pr.entry) -> i < 3 && not e.Pr.expect_fail)
         Pr.positive)
  in
  let groups, stats =
    engine_outcomes
      {
        E.default_config with
        E.domains = 4;
        cache = false;
        timeout_ms = Some 40.0;
      }
      (("slow", slow_prog) :: siblings)
  in
  List.iter
    (fun (name, outs) ->
      if String.equal name "slow" then
        List.iter
          (fun (_, o) ->
            match o with
            | V.Timeout _ -> ()
            | o -> Alcotest.failf "slow proc: expected Timeout, got %a" V.pp_outcome o)
          outs
      else
        List.iter
          (fun (pname, o) ->
            Alcotest.check outcome
              (Printf.sprintf "%s.%s unaffected" name pname)
              V.Verified o)
          outs)
    groups;
  Alcotest.(check int) "one timeout accounted" 1 stats.E.timeouts

(* ------------------------------------------------------------------ *)
(* VC cache: corruption is absorbed as a miss *)

let test_cache_corruption_is_a_miss () =
  let instance = G.euf_chain 8 in
  let serialized =
    Smt.Solver.serialize_vc ~max_rounds:5_000 ~minimize:true instance
  in
  let check_corruption mode =
    let cache = E.Vc_cache.create () in
    E.Vc_cache.install cache;
    Fun.protect ~finally:E.Vc_cache.uninstall (fun () ->
        let clean = Smt.Solver.check_sat instance in
        Alcotest.(check bool)
          "entry stored" true
          (E.Vc_cache.size cache = 1);
        Alcotest.(check bool)
          "corrupt_entry found its target" true
          (E.Vc_cache.corrupt_entry ~mode cache serialized);
        let again = Smt.Solver.check_sat instance in
        Alcotest.(check bool) "verdict unchanged" true (clean = again);
        Alcotest.(check int) "corruption detected" 1 (E.Vc_cache.corrupt cache);
        (* first query missed, second hit the corrupt entry -> miss *)
        Alcotest.(check int) "both lookups were misses" 2
          (E.Vc_cache.misses cache);
        (* the re-solved result replaced the corrupt entry: third hit *)
        let third = Smt.Solver.check_sat instance in
        Alcotest.(check bool) "verdict stable" true (clean = third);
        Alcotest.(check int) "repaired entry hits" 1 (E.Vc_cache.hits cache))
  in
  check_corruption `Flip;
  check_corruption `Truncate

(* ------------------------------------------------------------------ *)
(* Fault injection: degradation without verdict flips *)

let clean_reference entries =
  engine_outcomes
    { E.default_config with E.domains = 1; cache = false }
    (suite_progs entries)

let test_session_faults_fall_back () =
  let entries = List.filteri (fun i _ -> i < 4) Pr.positive in
  let clean, _ = clean_reference entries in
  let faulted, stats =
    with_faults ~seed:42 [ (F.Session, 1.0) ] (fun () ->
        engine_outcomes
          { E.default_config with E.domains = 1; cache = false }
          (suite_progs entries))
  in
  List.iter
    (fun (name, outs) ->
      Alcotest.check proc_results
        (name ^ " verdicts unchanged under session faults")
        outs
        (List.assoc name faulted))
    clean;
  Alcotest.(check bool)
    "fallbacks actually exercised" true
    (stats.E.smt.Smt.Stats.session_fallbacks > 0)

let test_cache_faults_keep_verdicts () =
  (* The engine's session path bypasses the VC cache, so drive the
     cache directly: every store is corrupted by the injected fault,
     every repeat lookup must detect it, re-solve, and agree with the
     uncached verdict. *)
  let instances =
    [ G.euf_chain 8; G.lia_diamond 4; G.pigeonhole 3; G.euf_chain 12 ]
  in
  let clean = List.map (fun i -> Smt.Solver.check_sat i) instances in
  let cache = E.Vc_cache.create () in
  E.Vc_cache.install cache;
  Fun.protect ~finally:E.Vc_cache.uninstall (fun () ->
      with_faults ~seed:7 [ (F.Cache, 1.0) ] (fun () ->
          List.iteri
            (fun rep _ ->
              List.iteri
                (fun i instance ->
                  let got = Smt.Solver.check_sat instance in
                  Alcotest.(check bool)
                    (Printf.sprintf "instance %d rep %d: verdict unchanged" i
                       rep)
                    true
                    (got = List.nth clean i))
                instances)
            [ 0; 1; 2 ]));
  Alcotest.(check bool)
    "corruption observed" true
    (E.Vc_cache.corrupt cache > 0);
  Alcotest.(check int) "no corrupt entry ever served" 0
    (E.Vc_cache.hits cache)

let test_pool_fault_crashes_not_fails () =
  let groups, stats =
    with_faults ~seed:3 [ (F.Pool, 1.0) ] (fun () ->
        engine_outcomes
          { E.default_config with E.domains = 4; cache = false }
          (suite_progs Pr.positive))
  in
  Alcotest.(check int)
    "pool survived: every group reported"
    (List.length Pr.positive) (List.length groups);
  List.iter
    (fun (name, outs) ->
      List.iter
        (fun (pname, o) ->
          match o with
          | V.Crashed i ->
              Alcotest.(check bool)
                (Printf.sprintf "%s.%s names the injected fault" name pname)
                true
                (String.length i.V.exn > 0)
          | o ->
              Alcotest.failf "%s.%s: expected Crashed, got %a" name pname
                V.pp_outcome o)
        outs)
    groups;
  Alcotest.(check int) "crashes accounted" stats.E.jobs stats.E.crashes

let test_deterministic_replay () =
  let entries = List.filteri (fun i _ -> i < 5) Pr.all in
  let run () =
    with_faults ~seed:1234 [ (F.Solver, 0.4); (F.Pool, 0.2) ] (fun () ->
        fst
          (engine_outcomes
             { E.default_config with E.domains = 1; cache = false }
             (suite_progs entries)))
  in
  let a = run () and b = run () in
  List.iter
    (fun (name, outs) ->
      Alcotest.check proc_results
        (name ^ " replays identically from the same seed")
        outs (List.assoc name b))
    a

(* ------------------------------------------------------------------ *)
(* Chaos: randomized fault schedules never flip a verdict *)

let chaos_entries =
  let positives = List.filteri (fun i _ -> i < 3) Pr.positive in
  let negatives = List.filter (fun (e : Pr.entry) -> e.Pr.expect_fail) Pr.all in
  positives @ List.filteri (fun i _ -> i < 2) negatives

let chaos_clean = lazy (fst (clean_reference chaos_entries))

let degraded = function
  | V.Timeout _ | V.Resource_out _ | V.Crashed _ -> true
  | V.Verified | V.Failed _ -> false

let chaos_schedule =
  QCheck.make
    ~print:(fun (seed, solver, pool, session, cache) ->
      Printf.sprintf "solver=%g,pool=%g,session=%g,cache=%g,seed=%d" solver
        pool session cache seed)
    QCheck.Gen.(
      let p = float_bound_inclusive 0.5 in
      tup5 (int_bound 1_000_000) p p (float_bound_inclusive 1.0)
        (float_bound_inclusive 1.0))

let chaos_no_verdict_flips =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"chaos-verdicts-never-flip" ~count:15
       chaos_schedule
       (fun (seed, solver, pool, session, cache) ->
         let clean = Lazy.force chaos_clean in
         let faulted, _ =
           with_faults ~seed
             [
               (F.Solver, solver);
               (F.Pool, pool);
               (F.Session, session);
               (F.Cache, cache);
             ]
             (fun () ->
               engine_outcomes
                 { E.default_config with E.domains = 2; cache = true }
                 (suite_progs chaos_entries))
         in
         List.for_all
           (fun (name, outs) ->
             let expected = List.assoc name clean in
             List.for_all
               (fun (pname, o) ->
                 (* Either the clean outcome, or an honest abstention.
                    In particular Verified<->Failed flips are ruled
                    out: a differing outcome must be degraded. *)
                 degraded o || o = List.assoc pname expected)
               outs)
           faulted))

(* ------------------------------------------------------------------ *)
(* Fault-spec parsing *)

let test_fault_determinism_across_domains () =
  (* Draws hash [(seed, site, k)] with k from a per-site atomic
     counter, so the *multiset* of draws over N total calls is fixed by
     the seed — how the calls interleave across domains only permutes
     which domain sees which k. The observable consequence: the total
     fire count is identical for any domain split, and replayable. *)
  let total_fires ~domains ~per_domain =
    F.configure ~seed:123 [ (F.Solver, 0.3) ];
    Fun.protect ~finally:F.clear (fun () ->
        let doms =
          List.init domains (fun _ ->
              Domain.spawn (fun () ->
                  let n = ref 0 in
                  for _ = 1 to per_domain do
                    if F.fires F.Solver then incr n
                  done;
                  !n))
        in
        List.fold_left (fun acc d -> acc + Domain.join d) 0 doms)
  in
  let seq = total_fires ~domains:1 ~per_domain:4000 in
  let par = total_fires ~domains:4 ~per_domain:1000 in
  let par' = total_fires ~domains:4 ~per_domain:1000 in
  Alcotest.(check int) "1 domain = 4 domains" seq par;
  Alcotest.(check int) "replay is exact" par par';
  Alcotest.(check bool)
    (Printf.sprintf "draws are non-trivial (%d/4000 fired)" seq)
    true
    (seq > 0 && seq < 4000)

let test_fault_spec_parsing () =
  (match F.configure_from_string "session=1,cache=0.5,seed=7" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid spec rejected: %s" m);
  Fun.protect ~finally:F.clear (fun () ->
      Alcotest.(check bool) "active" true (F.active ());
      Alcotest.(check (option int)) "seed parsed" (Some 7) (F.seed ()));
  Alcotest.(check bool)
    "unknown site rejected" true
    (match F.configure_from_string "warp=0.5" with
    | Error _ -> true
    | Ok () -> false);
  Alcotest.(check bool)
    "out-of-range probability rejected" true
    (match F.configure_from_string "solver=1.5" with
    | Error _ -> true
    | Ok () -> false);
  Alcotest.(check bool) "cleared" false (F.active ())

let () =
  Alcotest.run "resilience"
    [
      ( "budget",
        [
          Alcotest.test_case "deadline-stops-divergence" `Quick
            test_deadline_stops_divergence;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "parent-cancellation" `Quick
            test_parent_cancellation;
          Alcotest.test_case "child-never-outlives-parent" `Quick
            test_budget_child_never_outlives_parent;
          Alcotest.test_case "zero-and-negative" `Quick
            test_budget_zero_and_negative;
          Alcotest.test_case "fuel-simplex" `Quick test_fuel_simplex;
          Alcotest.test_case "fuel-sat-conflicts" `Quick
            test_fuel_sat_conflicts;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "job-timeout" `Quick test_job_timeout;
          Alcotest.test_case "retry-escalates-to-success" `Quick
            test_job_retry_escalates_to_success;
          Alcotest.test_case "timeout-isolates-siblings" `Quick
            test_engine_timeout_isolates_siblings;
        ] );
      ( "cache",
        [
          Alcotest.test_case "corruption-is-a-miss" `Quick
            test_cache_corruption_is_a_miss;
        ] );
      ( "faults",
        [
          Alcotest.test_case "session-faults-fall-back" `Quick
            test_session_faults_fall_back;
          Alcotest.test_case "cache-faults-keep-verdicts" `Quick
            test_cache_faults_keep_verdicts;
          Alcotest.test_case "pool-fault-crashes-not-fails" `Quick
            test_pool_fault_crashes_not_fails;
          Alcotest.test_case "deterministic-replay" `Quick
            test_deterministic_replay;
          Alcotest.test_case "determinism-across-domains" `Quick
            test_fault_determinism_across_domains;
          Alcotest.test_case "fault-spec-parsing" `Quick
            test_fault_spec_parsing;
          chaos_no_verdict_flips;
        ] );
    ]
