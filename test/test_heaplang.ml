(** Language tests: unit tests per construct, substitution laws, and a
    differential property — the big-step interpreter agrees with the
    small-step semantics on random programs. *)

open Heaplang
open Ast

let run_val e =
  match Interp.run e with
  | Interp.Value v -> v
  | Interp.Error m -> Alcotest.failf "runtime error: %s" m
  | Interp.Timeout -> Alcotest.fail "timeout"

let v_int = function Int n -> n | v -> Alcotest.failf "not an int: %a" pp_value v

let test_arith () =
  let open Syntax in
  Alcotest.(check int) "add" 7 (v_int (run_val (int 3 + int 4)));
  Alcotest.(check int) "prec" 11 (v_int (run_val (int 3 + (int 2 * int 4))));
  Alcotest.(check int) "sub" (-1) (v_int (run_val (int 3 - int 4)))

let test_let_lambda () =
  let open Syntax in
  let e = let_ "x" (int 5) (app (lam "y" (var "y" + var "x")) (int 2)) in
  Alcotest.(check int) "closure" 7 (v_int (run_val e))

let test_rec () =
  let open Syntax in
  (* rec fact n = if n <= 0 then 1 else n * fact (n-1) *)
  let fact =
    rec_ "f" "n"
      (if_ (var "n" <= int 0) (int 1) (var "n" * app (var "f") (var "n" - int 1)))
  in
  Alcotest.(check int) "fact 6" 720 (v_int (run_val (app fact (int 6))))

let test_heap_ops () =
  let open Syntax in
  let e =
    let_ "l" (alloc (int 1))
      (seq (store (var "l") (int 42)) (load (var "l")))
  in
  Alcotest.(check int) "store-load" 42 (v_int (run_val e));
  let e2 =
    let_ "l" (alloc (int 0))
      (seq (Faa (var "l", int 5)) (load (var "l")))
  in
  Alcotest.(check int) "faa" 5 (v_int (run_val e2));
  let e3 =
    let_ "l" (alloc (int 0))
      (PairE (Cas (var "l", int 0, int 9), load (var "l")))
  in
  (match run_val e3 with
  | Pair (Bool true, Int 9) -> ()
  | v -> Alcotest.failf "cas: %a" pp_value v);
  let e4 = let_ "l" (alloc (int 0)) (seq (Free (var "l")) (load (var "l"))) in
  match Interp.run e4 with
  | Interp.Error _ -> ()
  | _ -> Alcotest.fail "use-after-free must be a runtime error"

let test_while () =
  let open Syntax in
  let e =
    let_ "i" (alloc (int 0))
      (seq
         (While (load (var "i") < int 10,
                 store (var "i") (load (var "i") + int 1)))
         (load (var "i")))
  in
  Alcotest.(check int) "while counts" 10 (v_int (run_val e))

let test_case () =
  let open Syntax in
  let e = Case (InjLE (int 3), ("a", var "a" + int 1), ("b", var "b")) in
  Alcotest.(check int) "case-l" 4 (v_int (run_val e));
  let e2 = Case (InjRE (int 3), ("a", var "a" + int 1), ("b", var "b")) in
  Alcotest.(check int) "case-r" 3 (v_int (run_val e2))

let test_int_conflation () =
  (* The untyped machine accepts integers in boolean and address
     positions, matching the logic's first-order encoding. *)
  let open Syntax in
  Alcotest.(check int) "if-int" 1
    (v_int (run_val (If (int 7, int 1, int 2))));
  Alcotest.(check int) "if-zero" 2
    (v_int (run_val (If (int 0, int 1, int 2))));
  let e =
    let_ "l" (alloc (int 3))
      (Load (BinOp (Add, Fst (PairE (var "l", int 0)), int 0)))
  in
  ignore e;
  (* address-as-int: store/load through the integer address 0 *)
  let e2 =
    seq (alloc (int 11)) (Load (Val (Int 0)))
  in
  Alcotest.(check int) "load-int-addr" 11 (v_int (run_val e2));
  match Interp.run (Assert (int 3)) with
  | Interp.Value Unit -> ()
  | _ -> Alcotest.fail "assert on nonzero int"

let test_assert_ghost () =
  let open Syntax in
  Alcotest.(check bool) "assert-true" true
    (match Interp.run (Assert (bool true)) with
    | Interp.Value Unit -> true
    | _ -> false);
  (match Interp.run (Assert (bool false)) with
  | Interp.Error _ -> ()
  | _ -> Alcotest.fail "assert false must fail");
  match Interp.run (GhostMark "anything") with
  | Interp.Value Unit -> ()
  | _ -> Alcotest.fail "ghost marks are runtime no-ops"

(* Concurrency: [par] forks, [atomic] is indivisible, and the seeded
   scheduler is deterministic per seed. *)

let racy_incr l by =
  let open Syntax in
  store (Val (Loc l)) (load (Val (Loc l)) + int by)

let par_over_cell ~atomic_sections =
  (* one cell at address 0:
     ref 0; par { #0 <- !#0 + 1 } { #0 <- !#0 + 10 }; !#0 *)
  let open Syntax in
  let wrap e = if atomic_sections then Atomic e else e in
  seq (alloc (int 0))
    (seq
       (Par (wrap (racy_incr 0 1), wrap (racy_incr 0 10)))
       (load (Val (Loc 0))))

let interp_int ?seed e =
  match Interp.run ?seed e with
  | Interp.Value (Int n) -> n
  | r ->
      Alcotest.failf "expected an int, got %s"
        (match r with
        | Interp.Value v -> Fmt.str "%a" pp_value v
        | Interp.Error m -> m
        | Interp.Timeout -> "timeout")

let test_par_atomic () =
  (* par of values joins to unit *)
  (match Interp.run (Par (Val (Int 1), Val (Int 2))) with
  | Interp.Value Unit -> ()
  | _ -> Alcotest.fail "par must join to unit");
  (* the unseeded machine is left-first: no interleaving, no lost
     update even without atomic sections *)
  Alcotest.(check int) "left-first" 11
    (interp_int (par_over_cell ~atomic_sections:false));
  (* atomic sections make both increments land under every seed *)
  List.iter
    (fun seed ->
      Alcotest.(check int)
        (Printf.sprintf "atomic seed=%d" seed)
        11
        (interp_int ~seed (par_over_cell ~atomic_sections:true)))
    [ 1; 2; 3; 4; 5 ];
  (* without atomic sections some interleaving loses an update — the
     scheduler really does interleave *)
  let results =
    List.init 100 (fun i ->
        interp_int ~seed:(i + 1) (par_over_cell ~atomic_sections:false))
  in
  Alcotest.(check bool) "all results are race outcomes" true
    (List.for_all (fun n -> n = 1 || n = 10 || n = 11) results);
  Alcotest.(check bool) "some interleaving loses an update" true
    (List.exists (fun n -> n <> 11) results);
  (* same seed, same schedule, same result *)
  List.iter
    (fun seed ->
      Alcotest.(check int)
        (Printf.sprintf "deterministic seed=%d" seed)
        (interp_int ~seed (par_over_cell ~atomic_sections:false))
        (interp_int ~seed (par_over_cell ~atomic_sections:false)))
    [ 1; 7; 42 ]

let test_stuck () =
  List.iter
    (fun (name, e) ->
      match Interp.run e with
      | Interp.Error _ -> ()
      | _ -> Alcotest.failf "%s should be stuck" name)
    [
      ("unbound", Var "nope");
      ("app-non-fun", App (Val (Int 1), Val (Int 2)));
      ("if-non-bool", If (Val Unit, Val Unit, Val Unit));
      ("fst-non-pair", Fst (Val (Int 1)));
      ("add-bool", BinOp (Add, Val (Bool true), Val (Int 1)));
    ]

let test_subst () =
  let open Syntax in
  let e = let_ "x" (var "y") (var "x" + var "y") in
  let e' = Subst.subst "y" (Int 3) e in
  Alcotest.(check int) "subst" 6 (v_int (run_val e'));
  (* shadowing: inner binder protects *)
  let e2 = Subst.subst "x" (Int 9) (let_ "x" (int 1) (var "x")) in
  Alcotest.(check int) "shadow" 1 (v_int (run_val e2));
  Alcotest.(check (list string)) "free vars" [ "y" ] (Subst.free_vars e)

let test_close_syms () =
  let open Syntax in
  let e = load (Val (Sym "l")) + Val (Sym "k") in
  let closed =
    Subst.close_expr [ ("k", Int 5) ]
      (Subst.close_expr [ ("l", Loc 0) ] e)
  in
  match
    Interp.run (let_ "r" (alloc (int 2)) (seq (Val Unit) closed))
  with
  | Interp.Value (Int 7) -> ()
  | r ->
      Alcotest.failf "close_syms: %s"
        (match r with
        | Interp.Value v -> Fmt.str "%a" pp_value v
        | Interp.Error m -> m
        | Interp.Timeout -> "timeout")

(* Differential: interpreter ≡ small-step on random programs. *)

let gen_prog : expr QCheck.Gen.t =
  let open QCheck.Gen in
  (* Closed programs over int-valued lets and one heap cell. *)
  let rec go n vars =
    let leaf =
      frequency
        ([ (3, map (fun n -> Val (Int n)) (int_range (-5) 5)) ]
        @
        if vars = [] then [] else [ (3, map (fun x -> Var x) (oneofl vars)) ])
    in
    if n <= 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map3
              (fun op a b -> BinOp (op, a, b))
              (oneofl [ Add; Sub; Mul; Le; Eq ])
              (go (n - 1) vars) (go (n - 1) vars) );
          ( 2,
            let x = "v" ^ string_of_int (List.length vars) in
            map2 (fun a b -> Let (x, a, b)) (go (n - 1) vars)
              (go (n - 1) (x :: vars)) );
          ( 2,
            map3
              (fun c a b -> If (BinOp (Le, c, Val (Int 0)), a, b))
              (go (n - 1) vars) (go (n - 1) vars) (go (n - 1) vars) );
          ( 1,
            map2 (fun a b -> Seq (a, b)) (go (n - 1) vars) (go (n - 1) vars) );
          ( 1,
            let x = "l" ^ string_of_int (List.length vars) in
            map2
              (fun v body -> Let (x, Alloc v, body))
              (go (n - 1) vars)
              (map (fun e -> Seq (Store (Var x, e), Load (Var x)))
                 (go (n - 1) vars)) );
        ]
  in
  go 4 []

let rec small_step_run fuel (cfg : Step.cfg) =
  if fuel <= 0 then None
  else
    match Step.step cfg with
    | Step.Done (v, _) -> Some (Ok v)
    | Step.Next cfg -> small_step_run (fuel - 1) cfg
    | Step.Stuck m -> Some (Error m)

let agreement =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"interp-vs-smallstep" ~count:500
       (QCheck.make ~print:(Fmt.str "%a" pp_expr) gen_prog)
       (fun e ->
         let big = Interp.run ~fuel:100_000 e in
         let small =
           small_step_run 100_000 { Step.expr = e; heap = Heap.empty }
         in
         match (big, small) with
         | Interp.Value v1, Some (Ok v2) -> value_equal v1 v2
         | Interp.Error _, Some (Error _) -> true
         | Interp.Timeout, None -> true
         | Interp.Timeout, _ | _, None -> true (* fuel mismatch tolerated *)
         | _ -> false))

(* Differential: on par-free programs the seeded scheduler is inert —
   [run ~seed] agrees with plain sequential [run] for every seed.
   [gen_prog] never emits [Par], so this pins down that the scheduler
   only ever influences interleaving, not evaluation itself. *)

let seeded_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"seeded-run-is-sequential-without-par"
       ~count:300
       (QCheck.make ~print:(Fmt.str "%a" pp_expr) gen_prog)
       (fun e ->
         let plain = Interp.run ~fuel:100_000 e in
         List.for_all
           (fun seed -> Interp.run ~fuel:100_000 ~seed e = plain)
           [ 1; 2; 3 ]))

(* Parser round-trips: parse, run, compare. *)
let test_parser () =
  let runs src expected =
    match Interp.run (Parser.parse_exn src) with
    | Interp.Value v ->
        Alcotest.(check bool)
          (src ^ " = " ^ Fmt.str "%a" pp_value expected)
          true (value_equal v expected)
    | Interp.Error m -> Alcotest.failf "%s: runtime error %s" src m
    | Interp.Timeout -> Alcotest.failf "%s: timeout" src
  in
  runs "1 + 2 * 3" (Int 7);
  runs "(1 + 2) * 3" (Int 9);
  runs "let x = 4 in x - 1" (Int 3);
  runs "let l = ref 5 in l <- !l + 1; !l" (Int 6);
  runs "if 1 < 2 then 10 else 20" (Int 10);
  runs "let i = ref 0 in while !i < 5 do i <- !i + 1 done; !i" (Int 5);
  runs "(rec f n -> if n <= 1 then 1 else n * f (n - 1)) 5" (Int 120);
  runs "let p = (1, 2) in fst p + snd p" (Int 3);
  runs "let l = ref 0 in (CAS(l, 0, 9), !l)" (Pair (Bool true, Int 9));
  runs "let l = ref 10 in FAA(l, 5) + !l" (Int 25);
  runs "assert (2 == 2); 1" (Int 1);
  runs "ghost step; 7" (Int 7);
  runs "atomic { 1 + 2 }" (Int 3);
  runs "let l = ref 0 in par { atomic { l <- !l + 1 } } { atomic { l <- !l + 2 } }; !l"
    (Int 3);
  (match Parser.parse_exn "par { 1 } { 2 }" with
  | Par (Val (Int 1), Val (Int 2)) -> ()
  | e -> Alcotest.failf "par parse shape: %a" pp_expr e);
  (match Parser.parse_exn "atomic { !?l }" with
  | Atomic (Load (Val (Sym "l"))) -> ()
  | e -> Alcotest.failf "atomic parse shape: %a" pp_expr e);
  runs "let x = 3 in (* a comment *) x" (Int 3);
  (* closures compare physically; check the shape instead *)
  (match Interp.run (Parser.parse_exn "fun x -> x + 1") with
  | Interp.Value (RecV (None, "x", BinOp (Add, Var "x", Val (Int 1)))) -> ()
  | _ -> Alcotest.fail "fun parse shape");
  (* symbols parse into Sym leaves *)
  (match Parser.parse_exn "!?l + ?n" with
  | BinOp (Add, Load (Val (Sym "l")), Val (Sym "n")) -> ()
  | e -> Alcotest.failf "sym parse: %a" pp_expr e);
  (* errors are reported, not crashes *)
  List.iter
    (fun src ->
      match Parser.parse_exn src with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "%S should not parse" src)
    [ "let = 3"; "1 +"; "(1, 2"; "while 1 do 2"; "@" ]

let parser_interp_agreement =
  (* pretty-print a random program, reparse it, and compare runs —
     limited to the constructs whose printed form is re-parseable *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"parse-print-agree" ~count:200
       (QCheck.make ~print:(Fmt.str "%a" pp_expr) gen_prog)
       (fun e ->
         (* The printer's layout for binders is multi-line and not
            grammar-exact, so restrict the round-trip check to pure
            operator/literal trees — which the printer renders fully
            parenthesized. *)
         let rec flat = function
           | Val (Int _) -> true
           | BinOp (_, a, b) -> flat a && flat b
           | UnOp (_, a) -> flat a
           | _ -> false
         in
         if not (flat e) then true
         else
           let src = Fmt.str "%a" pp_expr e in
           match Parser.parse_exn src with
           | e' -> Interp.run e = Interp.run e'
           | exception Failure _ -> false))

let () =
  Alcotest.run "heaplang"
    [
      ( "eval",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "let-lambda" `Quick test_let_lambda;
          Alcotest.test_case "recursion" `Quick test_rec;
          Alcotest.test_case "heap-ops" `Quick test_heap_ops;
          Alcotest.test_case "while" `Quick test_while;
          Alcotest.test_case "case" `Quick test_case;
          Alcotest.test_case "assert-ghost" `Quick test_assert_ghost;
          Alcotest.test_case "int-conflation" `Quick test_int_conflation;
          Alcotest.test_case "par-atomic" `Quick test_par_atomic;
          Alcotest.test_case "stuck" `Quick test_stuck;
        ] );
      ( "subst",
        [
          Alcotest.test_case "substitution" `Quick test_subst;
          Alcotest.test_case "close-syms" `Quick test_close_syms;
        ] );
      ( "parser",
        [
          Alcotest.test_case "surface-syntax" `Quick test_parser;
          parser_interp_agreement;
        ] );
      ("differential", [ agreement; seeded_agreement ]);
    ]
