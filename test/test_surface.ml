(** Surface-language tests: the [.hl] example files elaborate to
    programs that verify identically to their hand-built
    {!Suite.Programs} twins; diagnostics on surface files carry
    accurate [file:line:col] spans; and the grammar-exact printers
    round-trip through the parser (QCheck) for terms, assertions, and
    expressions. *)

module S = Heaplang.Surface
module HL = Heaplang.Ast
module V = Verifier.Exec
module Loc = Stdx.Loc

(* ------------------------------------------------------------------ *)
(* Locating the example files: tests run in [_build/default/test], the
   dune deps put the sources next door in [../examples]. *)

let examples_dir =
  let rec find d fuel =
    let cand = Filename.concat d "examples" in
    if Sys.file_exists (Filename.concat cand "swap.hl") then cand
    else if fuel = 0 then Alcotest.fail "examples/ directory not found"
    else find (Filename.concat d Filename.parent_dir_name) (fuel - 1)
  in
  find (Sys.getcwd ()) 5

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let has_substring s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let load name =
  let path = Filename.concat examples_dir name in
  Verifier.Elab.program_of_string ~file:name (read_file path)

(* ------------------------------------------------------------------ *)
(* Round-trip: each .hl twin verifies with the same per-procedure
   verdict as the hand-built suite entry of the same name. *)

let twins =
  [
    ("swap.hl", "swap");
    ("swap_client.hl", "swap_client");
    ("count.hl", "count");
    ("max3.hl", "max3");
    ("clamp.hl", "clamp");
    ("bank.hl", "bank");
    ("shared_read.hl", "shared_read");
    ("list_length.hl", "list_length");
    ("bad_swap.hl", "bad_swap");
    ("spinlock.hl", "spinlock");
    ("ticket_lock.hl", "ticket_lock");
    ("treiber.hl", "treiber");
    ("lock_noinv.hl", "lock_noinv");
    ("da027_racy_par.hl", "racy_incr");
  ]

let verdicts prog =
  List.map (fun (p, o) -> (p, o = V.Verified)) (V.verify prog)

let test_twin (file, entry_name) () =
  let entry =
    match
      List.find_opt
        (fun (e : Suite.Programs.entry) -> String.equal e.name entry_name)
        Suite.Programs.all
    with
    | Some e -> e
    | None -> Alcotest.failf "no suite entry %s" entry_name
  in
  let prog, _srcmap = load file in
  let got = verdicts prog and want = verdicts entry.prog in
  Alcotest.(check (list (pair string bool)))
    (file ^ " verdicts match " ^ entry_name)
    want got;
  (* and the twin pair behaves as the suite expects *)
  let all_ok = List.for_all snd got in
  Alcotest.(check bool)
    (file ^ " expected polarity")
    (not entry.expect_fail) all_ok

(* ------------------------------------------------------------------ *)
(* Diagnostics carry accurate source spans. *)

let test_broken_span () =
  let prog, srcmap = load "broken.hl" in
  let ds =
    Diag.relocate_all srcmap
      (Analysis.analyze_program ~name:"broken.hl" prog)
  in
  let da001 =
    match List.find_opt (fun d -> d.Diag.code = "DA001") ds with
    | Some d -> d
    | None -> Alcotest.fail "broken.hl must produce DA001"
  in
  match da001.Diag.loc.Diag.span with
  | None -> Alcotest.fail "DA001 lost its source span"
  | Some s ->
      (* the requires clause of broken.hl: `requires mystery(l)` *)
      Alcotest.(check string) "file" "broken.hl" s.Loc.file;
      Alcotest.(check int) "line" 6 s.Loc.line;
      Alcotest.(check int) "col" 12 s.Loc.col;
      Alcotest.(check int) "end_col" 22 s.Loc.end_col;
      (* the JSON rendering carries the same span *)
      let j = Diag.to_json da001 in
      Alcotest.(check bool) "json span" true (has_substring j {|"line": 6|});
      Alcotest.(check bool) "json code" true (has_substring j {|"DA001"|})

let test_verify_failure_span () =
  (* A runtime spec error (not just the linter) is re-anchored too:
     a while loop without an invariant trips DA008 inside the
     symbolic executor, at the procedure body site. *)
  let src =
    "procedure spin(l)\n\
    \  requires (exists v. l |-> v)\n\
    \  ensures (exists w. l |-> w)\n\
     {\n\
    \  while 1 do l <- 0 done;\n\
    \  0\n\
     }\n"
  in
  let prog, srcmap =
    Verifier.Elab.program_of_string ~file:"spin.hl" src
  in
  let proc = List.hd prog.V.procs in
  match V.verify_proc ~srcmap prog proc with
  | V.Verified -> Alcotest.fail "spin must not verify without an invariant"
  | V.Failed m ->
      Alcotest.(check bool)
        ("failure message carries the body span: " ^ m)
        true
        (has_substring m "DA008" && has_substring m "spin.hl:4:1")
  | o -> Alcotest.failf "spin: expected a failure, got %a" V.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Located front-end errors. *)

let test_error_locations () =
  (match Heaplang.Parser.parse "let x = in x" with
  | _ -> Alcotest.fail "must not parse"
  | exception Heaplang.Parser.Parse_error (_, l) ->
      Alcotest.(check int) "parse error line" 1 l.Loc.line;
      Alcotest.(check int) "parse error col" 9 l.Loc.col);
  (match Heaplang.Lexer.tokenize "x +\n  @" with
  | _ -> Alcotest.fail "must not lex"
  | exception Heaplang.Lexer.Lex_error (_, l) ->
      Alcotest.(check int) "lex error line" 2 l.Loc.line;
      Alcotest.(check int) "lex error col" 3 l.Loc.col);
  (* spec annotations are rejected outside annotated programs *)
  (match Heaplang.Parser.parse "while true invariant emp do 0 done" with
  | _ -> Alcotest.fail "invariant outside a program must not parse"
  | exception Heaplang.Parser.Parse_error (m, _) ->
      Alcotest.(check bool)
        "message mentions procedure bodies" true
        (has_substring m "procedure bodies"))

let test_match_parse () =
  let e =
    Heaplang.Parser.parse_exn
      "match inl 3 with inl x -> x + 1 | inr y -> y end"
  in
  match e with
  | HL.Case
      ( HL.InjLE (HL.Val (HL.Int 3)),
        ("x", HL.BinOp (HL.Add, HL.Var "x", HL.Val (HL.Int 1))),
        ("y", HL.Var "y") ) ->
      ()
  | e -> Alcotest.failf "unexpected parse: %a" HL.pp_expr e

(* ------------------------------------------------------------------ *)
(* QCheck round-trips: parse (print x) ≡ x. *)

let dummy t : S.term = { S.t; tspan = Loc.dummy }
let dummy_a a : S.assertion = { S.a; aspan = Loc.dummy }

let gen_var = QCheck.Gen.oneofl [ "x"; "y"; "z"; "acc"; "v1" ]

let gen_term : S.term QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               map (fun i -> dummy (S.TInt i)) small_nat;
               map (fun b -> dummy (S.TBool b)) bool;
               map (fun x -> dummy (S.TVar x)) gen_var;
             ]
         in
         if n = 0 then leaf
         else
           frequency
             [
               (1, leaf);
               (2, map (fun t -> dummy (S.TDeref t)) (self (n / 2)));
               (1, map (fun t -> dummy (S.TNeg t)) (self (n / 2)));
               ( 4,
                 let op =
                   oneofl
                     HL.[ Add; Sub; Mul; Eq; Ne; Lt; Le; Gt; Ge; AndOp; OrOp ]
                 in
                 map3
                   (fun o a b -> dummy (S.TBin (o, a, b)))
                   op (self (n / 2)) (self (n / 2)) );
             ])

let gen_frac =
  QCheck.Gen.(
    oneof
      [
        return None;
        map2
          (fun n d -> Some { S.num = 1 + n; den = 1 + (n mod (d + 1)) + d })
          (int_bound 3) (int_bound 3);
      ])

let gen_assertion : S.assertion QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let points_to =
           (* left-hand sides that cannot be mistaken for a
              parenthesized assertion or a predicate application *)
           let lhs =
             oneof
               [
                 map (fun x -> dummy (S.TVar x)) gen_var;
                 map (fun x -> dummy (S.TDeref (dummy (S.TVar x)))) gen_var;
               ]
           in
           map3
             (fun alhs afrac arhs ->
               dummy_a (S.APointsTo { alhs; afrac; arhs }))
             lhs gen_frac (gen_term |> map Fun.id)
         in
         let leaf =
           oneof
             [
               return (dummy_a S.AEmp);
               map (fun t -> dummy_a (S.APure t)) gen_term;
               points_to;
               map
                 (fun args -> dummy_a (S.APred ("p", args)))
                 (list_size (int_bound 2) gen_term);
             ]
         in
         if n = 0 then leaf
         else
           frequency
             [
               (2, leaf);
               ( 2,
                 map2
                   (fun a b -> dummy_a (S.ASep (a, b)))
                   (self (n / 2)) (self (n / 2)) );
               ( 1,
                 map2
                   (fun a b -> dummy_a (S.AOr (a, b)))
                   (self (n / 2)) (self (n / 2)) );
               (1, map (fun a -> dummy_a (S.AStabilize a)) (self (n / 2)));
               ( 1,
                 map2
                   (fun xs a -> dummy_a (S.AExists (xs, a)))
                   (list_size (int_range 1 2) gen_var)
                   (self (n / 2)) );
             ])

let term_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"term-print-parse" ~count:500
       (QCheck.make ~print:S.term_to_string gen_term)
       (fun t ->
         S.term_equal t (Heaplang.Parser.parse_term (S.term_to_string t))))

let assertion_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"assertion-print-parse" ~count:500
       (QCheck.make ~print:S.assertion_to_string gen_assertion)
       (fun a ->
         S.assertion_equal a
           (Heaplang.Parser.parse_assertion (S.assertion_to_string a))))

(* Expressions: the parseable fragment of Ast.expr (no value literals
   beyond unit/bool/int/sym, no UnOp Not). *)
let gen_expr : HL.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               map (fun i -> HL.Val (HL.Int i)) small_nat;
               map (fun b -> HL.Val (HL.Bool b)) bool;
               return (HL.Val HL.Unit);
               map (fun x -> HL.Var x) gen_var;
               map (fun x -> HL.Val (HL.Sym x)) gen_var;
               map (fun x -> HL.GhostMark x) gen_var;
             ]
         in
         if n = 0 then leaf
         else
           let s = self (n / 2) in
           frequency
             [
               (2, leaf);
               ( 3,
                 let op =
                   oneofl
                     HL.[ Add; Sub; Mul; Div; Rem; Eq; Ne; Lt; Le; Gt; Ge ]
                 in
                 map3 (fun o a b -> HL.BinOp (o, a, b)) op s s );
               (1, map (fun e -> HL.UnOp (HL.Neg, e)) s);
               (1, map (fun e -> HL.Load e) s);
               (1, map2 (fun l e -> HL.Store (l, e)) s s);
               (1, map (fun e -> HL.Alloc e) s);
               (1, map (fun e -> HL.Free e) s);
               (1, map (fun e -> HL.Assert e) s);
               (1, map3 (fun c a b -> HL.If (c, a, b)) s s s);
               (1, map2 (fun a b -> HL.Seq (a, b)) s s);
               (1, map2 (fun c b -> HL.While (c, b)) s s);
               (1, map3 (fun x a b -> HL.Let (x, a, b)) gen_var s s);
               (1, map2 (fun x b -> HL.Rec (None, x, b)) gen_var s);
               (1, map2 (fun a b -> HL.App (a, b)) (map (fun x -> HL.Var x) gen_var) s);
               (1, map2 (fun a b -> HL.PairE (a, b)) s s);
               (1, map (fun e -> HL.Fst e) s);
               (1, map (fun e -> HL.Snd e) s);
               (1, map (fun e -> HL.InjLE e) s);
               (1, map (fun e -> HL.InjRE e) s);
               ( 1,
                 map3
                   (fun e (x, e1) (y, e2) -> HL.Case (e, (x, e1), (y, e2)))
                   s (pair gen_var s) (pair gen_var s) );
               (1, map3 (fun l a b -> HL.Cas (l, a, b)) s s s);
               (1, map2 (fun l d -> HL.Faa (l, d)) s s);
             ])

let expr_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"expr-print-parse" ~count:500
       (QCheck.make ~print:S.expr_to_string gen_expr)
       (fun e -> Heaplang.Parser.parse (S.expr_to_string e) = e))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "surface"
    [
      ( "twins",
        List.map
          (fun ((file, _) as tw) ->
            Alcotest.test_case file `Quick (test_twin tw))
          twins );
      ( "spans",
        [
          Alcotest.test_case "broken.hl-lint-span" `Quick test_broken_span;
          Alcotest.test_case "broken.hl-verify-span" `Quick
            test_verify_failure_span;
          Alcotest.test_case "error-locations" `Quick test_error_locations;
          Alcotest.test_case "match-parse" `Quick test_match_parse;
        ] );
      ( "roundtrip",
        [ term_roundtrip; assertion_roundtrip; expr_roundtrip ] );
    ]
