(** Static-analyzer tests.

    - QCheck over the assertion AST: {!Analysis.Stability.verdict}
      agrees with {!Baselogic.Assertion.stable} on every input, and
      each reported escape is a genuine heap read outside the global
      footprint.
    - Deterministic stability explanations: paths, anchors, and the
      fix the suggested ⌊·⌋ placement actually is.
    - The frame lint is branch-aware and respects ambient chunks.
    - The whole suite and the example registry lint clean; every
      ill-formed case produces its annotated codes.
    - Spec-shaped failures route through {!Diag.Spec_error} in the
      executor, so lint-clean programs never reach them.
    - Engine gating: with [config.lint], bad programs fail without a
      solver call while good ones still verify.
    - JSON renderer smoke tests. *)

module An = Analysis
module Stab = Analysis.Stability
module Frame = Analysis.Frame
module A = Baselogic.Assertion
module GV = Baselogic.Ghost_val
module HT = Baselogic.Hterm
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module St = Verifier.State
module E = Engine
open Stdx

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* QCheck: a sized generator over the assertion AST. Location terms
   are drawn from a small pool so reads sometimes hit and sometimes
   miss the generated points-to chunks. *)

let gen_loc = QCheck.Gen.oneofl [ T.var "l"; T.var "r"; T.var "p" ]

let gen_pure_term =
  let open QCheck.Gen in
  oneof
    [
      map (fun l -> T.eq (HT.deref l) (T.int 5)) gen_loc;
      map2 (fun a b -> T.eq (HT.deref a) (HT.deref b)) gen_loc gen_loc;
      map (fun l -> T.le (T.int 0) (HT.deref l)) gen_loc;
      return (T.eq (T.var "x") (T.int 0));
      return T.tru;
    ]

let gen_assertion =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let base =
           oneof
             [
               map (fun t -> A.Pure t) gen_pure_term;
               return A.Emp;
               map (fun l -> A.points_to l (T.int 7)) gen_loc;
               map (fun l -> A.Pred ("c", [ l ])) gen_loc;
               return (A.Ghost ("γ", GV.Max_nat (T.int 1)));
             ]
         in
         if n <= 0 then base
         else
           let sub = self (n / 2) in
           frequency
             [
               (2, base);
               (3, map2 (fun a b -> A.Sep (a, b)) sub sub);
               (2, map2 (fun a b -> A.And (a, b)) sub sub);
               (2, map2 (fun a b -> A.Or (a, b)) sub sub);
               (1, map2 (fun a b -> A.Wand (a, b)) sub sub);
               (1, map (fun a -> A.Exists ("x", a)) sub);
               (1, map (fun a -> A.Forall ("x", a)) sub);
               (1, map (fun a -> A.Persistently a) sub);
               (1, map (fun a -> A.Later a) sub);
               (1, map (fun a -> A.Upd a) sub);
               (2, map (fun a -> A.Stabilize a) sub);
             ])

let arb_assertion = QCheck.make ~print:A.to_string gen_assertion

(* The analyzer's verdict is definitionally the kernel-side judgment:
   neither stricter nor laxer, on arbitrary assertions. *)
let qcheck_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"verdict-agrees-with-stable" ~count:500
       arb_assertion (fun a ->
         Stab.verdict a = Stab.Stable = A.stable a))

(* Every escape the explanation names really is a heap read of the
   assertion that the global footprint does not cover. *)
let qcheck_escapes_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"escapes-are-uncovered-heap-reads" ~count:500
       arb_assertion (fun a ->
         match Stab.verdict a with
         | Stab.Stable -> true
         | Stab.Unstable es ->
             let fp = A.footprint [] a in
             let reads = A.heap_reads [] a in
             es <> []
             && List.for_all
                  (fun (e : Stab.escape) ->
                    (not (List.exists (T.equal e.Stab.read) fp))
                    && List.exists (T.equal e.Stab.read) reads)
                  es))

(* ⌊·⌋ at the root stabilizes anything — on both sides of the fence. *)
let qcheck_stabilize_root =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"stabilize-at-root-is-stable" ~count:200
       arb_assertion (fun a ->
         Stab.stable (A.Stabilize a) && A.stable (A.Stabilize a)))

(* ------------------------------------------------------------------ *)
(* QCheck: abstract-interpreter soundness. Closed expressions from the
   executable int fragment run both concretely ({!Heaplang.Interp})
   and abstractly ({!Analysis.Absint.eval_expr}); a terminating
   concrete run must land inside the abstract result — the property
   the verifier's Valid-only pre-discharge rests on. *)

module Dom = An.Domain
module AD = Absdom
module Interp = Heaplang.Interp

let gen_closed_expr =
  let open QCheck.Gen in
  let lit = map (fun i -> HL.Val (HL.Int i)) (int_range (-20) 20) in
  sized_size (int_bound 6)
  @@ fix (fun self n ->
         let leaf = lit in
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           let arith op = map2 (fun a b -> HL.BinOp (op, a, b)) sub sub in
           let cmp op = map2 (fun a b -> HL.BinOp (op, a, b)) sub sub in
           frequency
             [
               (2, leaf);
               (3, arith HL.Add);
               (2, arith HL.Sub);
               (1, arith HL.Mul);
               (1, arith HL.Div);
               (1, arith HL.Rem);
               ( 2,
                 map2
                   (fun a b ->
                     HL.Let ("v", a, HL.BinOp (HL.Add, HL.Var "v", b)))
                   sub sub );
               ( 3,
                 map3
                   (fun c a b -> HL.If (c, a, b))
                   (oneof [ cmp HL.Lt; cmp HL.Le; cmp HL.Eq; cmp HL.Ne ])
                   sub sub );
               (1, map2 (fun a b -> HL.Seq (a, b)) sub sub);
               ( 2,
                 (* a ref-cell round trip: locations only ever come
                    from Alloc, so the heap stays well-typed *)
                 map2
                   (fun init upd ->
                     HL.Let
                       ( "r",
                         HL.Alloc init,
                         HL.Seq
                           ( HL.Store (HL.Var "r", upd),
                             HL.Load (HL.Var "r") ) ))
                   sub sub );
               ( 1,
                 (* bounded countdown through the invariant-free
                    join/widen fixpoint *)
                 map
                   (fun k ->
                     HL.Let
                       ( "c",
                         HL.Alloc (HL.Val (HL.Int k)),
                         HL.Seq
                           ( HL.While
                               ( HL.BinOp
                                   ( HL.Gt,
                                     HL.Load (HL.Var "c"),
                                     HL.Val (HL.Int 0) ),
                                 HL.Store
                                   ( HL.Var "c",
                                     HL.BinOp
                                       ( HL.Sub,
                                         HL.Load (HL.Var "c"),
                                         HL.Val (HL.Int 1) ) ) ),
                             HL.Load (HL.Var "c") ) ))
                   (int_range 0 6) );
             ])

let arb_closed_expr =
  QCheck.make ~print:(Fmt.to_to_string HL.pp_expr) gen_closed_expr

(* A terminating concrete run is a concretization of the abstract
   result: the final state is not ⊥, the abstract result term is never
   *refuted* to equal the concrete value, and pinning the result atom
   to the concrete value stays inside γ(env). Faulting or diverging
   runs (division by zero, fuel) constrain nothing. *)
let qcheck_absint_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"abstract-over-approximates-concrete" ~count:500
       arb_closed_expr (fun e ->
         match Interp.run ~fuel:20_000 e with
         | Interp.Error _ | Interp.Timeout -> true
         | Interp.Value v -> (
             let st, t = An.Absint.eval_expr e in
             (not (Dom.is_bot st))
             &&
             match (t, Baselogic.Kernel.value_term v) with
             | Some t, Some cv ->
                 Dom.holds st (T.eq t cv) <> AD.No
                 && AD.satisfies
                      ~lookup:(fun a ->
                        if T.equal a t then
                          match T.view cv with
                          | T.Int_lit n -> Some n
                          | _ -> None
                        else None)
                      st.Dom.env
             | _ -> true)))

(* The discharge property itself: a [Yes] from the abstract domain on
   facts it assumed means the facts entail the formula — the SMT
   solver, given the same facts and the negated formula, must answer
   Unsat. (An abstractly-⊥ environment claims the facts themselves are
   contradictory, which the same call checks.) *)
let gen_lin_term =
  let open QCheck.Gen in
  let v = oneofl [ T.var "x"; T.var "y"; T.var "z" ] in
  map3
    (fun c v k -> T.add (T.mul (T.int c) v) (T.int k))
    (int_range (-3) 3) v (int_range (-10) 10)

let gen_lin_atom =
  let open QCheck.Gen in
  oneof
    [
      map2 T.eq gen_lin_term gen_lin_term;
      map2 T.le gen_lin_term gen_lin_term;
      map2 T.lt gen_lin_term gen_lin_term;
      map (fun (a, b) -> T.not_ (T.le a b))
        (pair gen_lin_term gen_lin_term);
    ]

let arb_discharge =
  QCheck.make
    ~print:(fun (cs, phi) ->
      Fmt.str "facts [%a] ⊢? %a" Fmt.(list ~sep:comma T.pp) cs T.pp phi)
    QCheck.Gen.(pair (list_size (int_bound 4) gen_lin_atom) gen_lin_atom)

let qcheck_discharge_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"absint-valid-implies-smt-valid" ~count:300
       arb_discharge (fun (cs, phi) ->
         let env = List.fold_left (fun e c -> AD.assume c e) AD.top cs in
         if AD.holds env phi = AD.Yes then
           match Smt.Solver.check_sat (T.not_ phi :: cs) with
           | Smt.Solver.Sat _ -> false
           | Smt.Solver.Unsat | Smt.Solver.Unknown
           | Smt.Solver.Resource_out _ ->
               true
         else true))

(* ------------------------------------------------------------------ *)
(* Deterministic stability explanations *)

let l = T.var "l"
let read5 = A.Pure (T.eq (HT.deref l) (T.int 5))

let test_explanations () =
  (match Stab.verdict (A.Sep (read5, A.points_to l (T.int 5))) with
  | Stab.Stable -> ()
  | Stab.Unstable _ -> Alcotest.fail "covered read must be stable");
  (match Stab.verdict read5 with
  | Stab.Unstable [ e ] ->
      Alcotest.(check bool) "read is l" true (T.equal e.Stab.read l);
      Alcotest.(check (list string)) "path" [ "⌜·⌝" ] e.Stab.path;
      Alcotest.(check bool) "no anchor" true (e.Stab.anchor = None)
  | _ -> Alcotest.fail "bare read must have exactly one escape");
  (* [Or] hides its branches from the global footprint; the branch
     that owns the read is the suggested ⌊·⌋ anchor. *)
  (match
     Stab.verdict (A.Or (A.Sep (read5, A.points_to l (T.int 5)), A.Emp))
   with
  | Stab.Unstable [ e ] -> (
      Alcotest.(check (list string))
        "escape path"
        [ "∨"; "∗"; "⌜·⌝" ]
        e.Stab.path;
      match e.Stab.anchor with
      | Some p -> Alcotest.(check (list string)) "anchor" [ "∨" ] p
      | None -> Alcotest.fail "expected a ⌊·⌋ anchor")
  | _ -> Alcotest.fail "Or-hidden footprint must escape exactly once");
  (* … and placing the ⌊·⌋ there fixes it. *)
  match
    Stab.verdict
      (A.Or (A.Stabilize (A.Sep (read5, A.points_to l (T.int 5))), A.Emp))
  with
  | Stab.Stable -> ()
  | Stab.Unstable _ -> Alcotest.fail "⌊·⌋ at the anchor must stabilize"

(* DA011 diags carry the escape path and a hint. *)
let test_da011_diag () =
  let loc = Diag.loc ~unit_name:"u" (Diag.Proc "f") Diag.Requires in
  match Stab.check ~loc read5 with
  | [ d ] ->
      Alcotest.(check string) "code" "DA011" d.Diag.code;
      Alcotest.(check bool) "is error" true (Diag.is_error d);
      Alcotest.(check (list string)) "path" [ "⌜·⌝" ] d.Diag.loc.Diag.path;
      Alcotest.(check bool) "has hint" true (d.Diag.hint <> None)
  | ds -> Alcotest.failf "expected one DA011, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* Frame lint: branch-aware, ambient-aware *)

let test_frame () =
  let loc = Diag.loc (Diag.Proc "f") Diag.Requires in
  (* stable by construction, still unresolvable: the classic ⌊⌜!l=5⌝⌋ *)
  (match Frame.check ~loc ~severity:Diag.Error (A.Stabilize read5) with
  | [ d ] -> Alcotest.(check string) "code" "DA013" d.Diag.code
  | ds -> Alcotest.failf "expected one DA013, got %d" (List.length ds));
  (* only the branch without the chunk is flagged *)
  let branchy =
    A.Or (A.Sep (read5, A.points_to l (T.int 5)), A.Stabilize read5)
  in
  (match Frame.check ~loc ~severity:Diag.Warning branchy with
  | [ d ] -> Alcotest.(check string) "code" "DA013" d.Diag.code
  | ds -> Alcotest.failf "one uncovered branch, got %d" (List.length ds));
  (* ambient chunks (e.g. the requires footprint at an ensures site)
     cover the read *)
  Alcotest.(check int)
    "ambient covers" 0
    (List.length
       (Frame.check ~loc ~severity:Diag.Warning ~ambient:[ l ]
          (A.Stabilize read5)))

(* ------------------------------------------------------------------ *)
(* Whole-program: suite + examples clean, ill-formed suite coded *)

let test_suite_clean () =
  List.iter
    (fun (name, prog) ->
      let ds = An.analyze_program ~name prog in
      if Diag.has_errors ds then
        Alcotest.failf "%s must lint clean:@.%a" name Diag.pp_list
          (Diag.errors ds))
    (List.map
       (fun (e : Suite.Programs.entry) ->
         (e.Suite.Programs.name, e.Suite.Programs.prog))
       Suite.Programs.all
    @ Suite.Examples.all)

let test_ill_formed () =
  List.iter
    (fun (c : Suite.Ill_formed.case) ->
      let ds =
        An.analyze_program ~name:c.Suite.Ill_formed.name
          c.Suite.Ill_formed.prog
      in
      let got = List.map (fun d -> d.Diag.code) ds in
      List.iter
        (fun code ->
          if not (List.mem code got) then
            Alcotest.failf "%s: expected %s, got [%s]"
              c.Suite.Ill_formed.name code (String.concat " " got))
        c.Suite.Ill_formed.codes)
    Suite.Ill_formed.all

(* The acceptance property: a lint-clean program cannot reach a
   spec-shaped [fail] in the symbolic executor — all its failures (if
   any) are semantic, never DA-coded. *)
let test_clean_never_spec_fails () =
  List.iter
    (fun (e : Suite.Programs.entry) ->
      if An.ok (An.analyze_program ~name:e.name e.prog) then
        List.iter
          (fun (p, o) ->
            match o with
            | V.Verified | V.Timeout _ | V.Resource_out _ | V.Crashed _ -> ()
            | V.Failed m ->
                if contains ~sub:"DA0" m then
                  Alcotest.failf "%s/%s: lint-clean yet spec-error: %s"
                    e.name p m)
          (V.verify e.prog))
    Suite.Programs.all

(* ------------------------------------------------------------------ *)
(* Spec_error routing through the executor *)

let proc ?(params = []) ?(requires = A.Emp) ?(ensures = A.Emp)
    ?(body = HL.Val HL.Unit) ?(invariants = []) ?(ghost = []) pname =
  { V.pname; params; requires; ensures; body; invariants; ghost }

let failed_with code prog p =
  match V.verify_proc prog p with
  | V.Failed m ->
      Alcotest.(check bool) (code ^ " in message") true (contains ~sub:code m)
  | o -> Alcotest.failf "expected a %s failure, got %a" code V.pp_outcome o

let test_spec_error_routing () =
  (* DA001: ghost fold of an unknown predicate *)
  let p =
    proc ~body:(HL.GhostMark "f")
      ~ghost:[ ("f", [ V.Fold ("nope", []) ]) ]
      "p"
  in
  failed_with "DA001" { V.procs = [ p ]; preds = Smap.empty; invs = [] } p;
  (* DA003: unknown procedure *)
  let p = proc ~body:(HL.App (HL.Var "nosuch", HL.Val (HL.Int 1))) "p" in
  failed_with "DA003" { V.procs = [ p ]; preds = Smap.empty; invs = [] } p;
  (* DA004: arity mismatch at a call site *)
  let callee = proc ~params:[ "a"; "b" ] "callee" in
  let p = proc ~body:(HL.App (HL.Var "callee", HL.Val (HL.Int 1))) "p" in
  failed_with "DA004" { V.procs = [ callee; p ]; preds = Smap.empty; invs = [] } p;
  (* DA008: while without invariant *)
  let p =
    proc ~body:(HL.While (HL.Val (HL.Bool false), HL.Val HL.Unit)) "p"
  in
  failed_with "DA008" { V.procs = [ p ]; preds = Smap.empty; invs = [] } p;
  (* DA009: ghost mark with no block *)
  let p = proc ~body:(HL.GhostMark "gone") "p" in
  failed_with "DA009" { V.procs = [ p ]; preds = Smap.empty; invs = [] } p;
  (* DA012: State.create refuses an unstable predicate environment *)
  let shaky =
    {
      A.pname = "shaky";
      params = [ "p" ];
      body = A.Pure (T.eq (HT.deref (T.var "p")) (T.int 0));
    }
  in
  match St.create ~penv:(Smap.of_list [ ("shaky", shaky) ]) () with
  | _ -> Alcotest.fail "unstable penv must be refused"
  | exception Diag.Spec_error d ->
      Alcotest.(check string) "code" "DA012" d.Diag.code

(* ------------------------------------------------------------------ *)
(* Engine gating *)

let test_engine_gating () =
  let cfg = { E.default_config with E.lint = true } in
  let bad = Suite.Ill_formed.unknown_pred in
  let bank = Suite.Programs.bank in
  let report =
    E.verify_programs ~config:cfg
      [
        (bad.Suite.Ill_formed.name, bad.Suite.Ill_formed.prog);
        (bank.Suite.Programs.name, bank.Suite.Programs.prog);
      ]
  in
  Alcotest.(check int) "two groups" 2 (List.length report.E.groups);
  let find g =
    List.find (fun (r : E.group_result) -> String.equal r.E.group g)
      report.E.groups
  in
  let g_bad = find bad.Suite.Ill_formed.name in
  List.iter
    (fun (p, o) ->
      match o with
      | V.Failed m when contains ~sub:"DA001" m -> ()
      | _ -> Alcotest.failf "gated proc %s must fail with DA001" p)
    g_bad.E.outcomes;
  Alcotest.(check bool) "bank still verifies" true
    (E.group_ok (find bank.Suite.Programs.name));
  match report.E.stats.E.analysis with
  | None -> Alcotest.fail "lint run must report analysis stats"
  | Some a ->
      Alcotest.(check int) "analyzed both" 2 a.E.a_programs;
      Alcotest.(check bool) "saw errors" true (a.E.a_errors > 0)

(* ------------------------------------------------------------------ *)
(* JSON renderer *)

let test_json () =
  Alcotest.(check string) "empty list" "[]" (Diag.list_to_json []);
  let d =
    Diag.error ~code:"DA011" ~hint:"wrap it"
      ~loc:(Diag.loc ~unit_name:"u" (Diag.Proc "f") Diag.Requires)
      "boom %d" 3
  in
  let js = Diag.to_json d in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true (contains ~sub js))
    [
      {|"code": "DA011"|};
      {|"severity": "error"|};
      {|"message": "boom 3"|};
      {|"hint": "wrap it"|};
      {|"site": "requires"|};
    ]

let () =
  Alcotest.run "analysis"
    [
      ( "stability",
        [
          qcheck_agreement;
          qcheck_escapes_sound;
          qcheck_stabilize_root;
          Alcotest.test_case "explanations" `Quick test_explanations;
          Alcotest.test_case "da011-diag" `Quick test_da011_diag;
        ] );
      ("frame", [ Alcotest.test_case "frame-lint" `Quick test_frame ]);
      ("absint", [ qcheck_absint_sound; qcheck_discharge_sound ]);
      ( "programs",
        [
          Alcotest.test_case "suite-lints-clean" `Quick test_suite_clean;
          Alcotest.test_case "ill-formed-codes" `Quick test_ill_formed;
          Alcotest.test_case "clean-never-spec-fails" `Slow
            test_clean_never_spec_fails;
        ] );
      ( "routing",
        [
          Alcotest.test_case "spec-error-routing" `Quick
            test_spec_error_routing;
          Alcotest.test_case "engine-gating" `Quick test_engine_gating;
        ] );
      ("render", [ Alcotest.test_case "json" `Quick test_json ]);
    ]
