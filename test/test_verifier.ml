(** Verifier tests: the whole suite verifies, negative entries are
    rejected, the heap-dependence toggle behaves, mutations invalidate
    stale facts, and generated workloads verify at several sizes. *)

module A = Baselogic.Assertion
module GV = Baselogic.Ghost_val
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module St = Verifier.State
open Stdx

let sym x = HL.Val (HL.Sym x)
let pt ?frac l v = A.points_to ?frac (T.var l) v

let all_verified prog =
  List.for_all (fun (_, o) -> o = V.Verified) (V.verify prog)

let suite_cases =
  List.map
    (fun (e : Suite.Programs.entry) ->
      Alcotest.test_case e.name `Quick (fun () ->
          let ok = all_verified e.prog in
          if e.expect_fail then
            Alcotest.(check bool) (e.name ^ " must fail") false ok
          else Alcotest.(check bool) (e.name ^ " verifies") true ok))
    Suite.Programs.all

let stable_variant_cases =
  List.filter_map
    (fun (e : Suite.Programs.entry) ->
      Option.map
        (fun sv ->
          Alcotest.test_case (e.name ^ "-stable") `Quick (fun () ->
              Alcotest.(check bool) "stable variant verifies" true
                (all_verified sv)))
        e.stable_variant)
    Suite.Programs.all

(* Session vs one-shot: routing every obligation through the cached
   one-shot pipeline (the pre-session verifier) must produce verdicts
   bit-identical to the incremental sessions, on positive and
   expect_fail entries alike — including the failure messages. *)
let test_session_oneshot_identical () =
  List.iter
    (fun (e : Suite.Programs.entry) ->
      let incremental = V.verify e.prog in
      Smt.Session.oneshot := true;
      let oneshot =
        Fun.protect
          ~finally:(fun () -> Smt.Session.oneshot := false)
          (fun () -> V.verify e.prog)
      in
      Alcotest.(check bool)
        (e.name ^ ": session ≡ one-shot")
        true
        (incremental = oneshot))
    Suite.Programs.all

let test_heap_dep_toggle () =
  (* The hd spec must be rejected with heap_dep:false, and the stable
     variant must still pass. *)
  let e = Suite.Programs.count in
  let hd_off =
    List.for_all (fun (_, o) -> o = V.Verified)
      (V.verify ~heap_dep:false e.Suite.Programs.prog)
  in
  Alcotest.(check bool) "hd spec rejected with toggle off" false hd_off;
  match e.Suite.Programs.stable_variant with
  | Some sv ->
      let ok =
        List.for_all (fun (_, o) -> o = V.Verified) (V.verify ~heap_dep:false sv)
      in
      Alcotest.(check bool) "stable variant immune to toggle" true ok
  | None -> Alcotest.fail "count has a stable variant"

(* State-level unit tests *)

let test_inhale_consume () =
  let st = St.create () in
  let a = A.seps [ pt "l" (T.var "v"); A.Pure (T.le (T.int 0) (T.var "v")) ] in
  let st = St.inhale st a in
  Alcotest.(check int) "one chunk" 1 (List.length st.St.chunks);
  let st' = St.consume st (pt "l" (T.var "v")) in
  Alcotest.(check int) "chunk consumed" 0 (List.length st'.St.chunks);
  (match St.consume st' (pt "l" (T.var "v")) with
  | _ -> Alcotest.fail "double consume must fail"
  | exception St.Verification_error _ -> ());
  (* fraction splitting *)
  let st = St.inhale (St.create ()) (pt "l" (T.var "v")) in
  let st = St.consume st (pt ~frac:Q.half "l" (T.var "v")) in
  Alcotest.(check int) "half left" 1 (List.length st.St.chunks);
  ignore (St.consume st (pt ~frac:Q.half "l" (T.var "v")))

let test_resolution () =
  let st = St.create () in
  let st = St.inhale st (pt "l" (T.var "v")) in
  let phi = T.le (Baselogic.Hterm.deref (T.var "l")) (T.int 5) in
  let resolved = St.resolve st phi in
  Alcotest.(check bool) "read resolved" false
    (Baselogic.Hterm.heap_dependent resolved);
  (* read without permission *)
  let st0 = St.create () in
  match St.resolve st0 phi with
  | _ -> Alcotest.fail "must fail without permission"
  | exception St.Verification_error _ -> ()

let test_mutation_invalidates () =
  (* This is the destabilization property end-to-end: a spec carrying
     ⌜!l = v0⌝ past a store of a different value must fail, and the
     corrected spec must pass. *)
  let body = HL.Store (sym "l", HL.Val (HL.Int 9)) in
  let stale =
    {
      V.pname = "stale";
      params = [ "l"; "v0" ];
      requires =
        A.Sep (pt "l" (T.var "v0"),
               A.Pure (T.eq (Baselogic.Hterm.deref (T.var "l")) (T.var "v0")));
      ensures =
        A.Sep (A.Exists ("w", pt "l" (T.var "w")),
               A.Pure (T.eq (Baselogic.Hterm.deref (T.var "l")) (T.var "v0")));
      body;
      invariants = [];
      ghost = [];
    }
  in
  let fixed =
    {
      stale with
      V.pname = "fixed";
      ensures =
        A.Sep (A.Exists ("w", pt "l" (T.var "w")),
               A.Pure (T.eq (Baselogic.Hterm.deref (T.var "l")) (T.int 9)));
    }
  in
  let prog = { V.procs = [ stale; fixed ]; preds = Smap.empty; invs = [] } in
  (match V.verify_proc prog stale with
  | V.Failed _ -> ()
  | o -> Alcotest.failf "stale heap fact must not survive a store: %a" V.pp_outcome o);
  match V.verify_proc prog fixed with
  | V.Verified -> ()
  | o -> Alcotest.failf "fixed spec must verify: %a" V.pp_outcome o

let test_generated_sizes () =
  List.iter
    (fun n ->
      let p, _ = Suite.Generators.straightline n in
      match V.verify_proc { V.procs = [ p ]; preds = Smap.empty; invs = [] } p with
      | V.Verified -> ()
      | o -> Alcotest.failf "straightline %d: %a" n V.pp_outcome o)
    [ 1; 3; 7 ];
  List.iter
    (fun k ->
      let p = Suite.Generators.multicell k in
      match V.verify_proc { V.procs = [ p ]; preds = Smap.empty; invs = [] } p with
      | V.Verified -> ()
      | o -> Alcotest.failf "multicell %d: %a" k V.pp_outcome o)
    [ 1; 3; 5 ]

(* Mutated suite programs must fail: spec fuzzing. *)
let test_spec_mutations () =
  let weaken_requires (p : V.proc) = { p with V.requires = A.Emp } in
  List.iter
    (fun (name, proc, preds) ->
      let mutant = weaken_requires proc in
      let prog = { V.procs = [ mutant ]; preds; invs = [] } in
      match V.verify_proc prog mutant with
      | V.Failed _ -> ()
      | V.Verified ->
          (* Some programs survive (pure ones with Emp pre already);
             heap-manipulating ones must not. *)
          Alcotest.failf "%s verified without its precondition!" name
      | o -> Alcotest.failf "%s: unexpected outcome %a" name V.pp_outcome o)
    [
      ("swap", Suite.Programs.swap_proc, Smap.empty);
      ("length", Suite.Programs.length_proc, Suite.Programs.clist_preds);
      ("faa", Suite.Programs.faa_proc, Smap.empty);
    ]

(* Verify-then-run: a verified program runs without fault and its
   observable result matches the spec on concrete inputs. *)
let test_verify_then_run () =
  (* count with i=#0 initialized to 0 and n = 5 must return 5. *)
  let e =
    HL.Let ("i0", HL.Alloc (HL.Val (HL.Int 0)),
      Heaplang.Subst.close_expr [ ("n", HL.Int 5) ]
        (HL.Let ("tmp", HL.Val (HL.Sym "dummy"), HL.Val HL.Unit)))
  in
  ignore e;
  let body = (Suite.Programs.count_proc Suite.Programs.count_inv_hd).V.body in
  let closed = Heaplang.Subst.close_expr [ ("i", HL.Loc 0); ("n", HL.Int 5) ] body in
  let setup = HL.Seq (HL.Alloc (HL.Val (HL.Int 0)), closed) in
  match Heaplang.Interp.run setup with
  | Heaplang.Interp.Value (HL.Int 5) -> ()
  | r ->
      Alcotest.failf "count ran wrong: %s"
        (match r with
        | Heaplang.Interp.Value v -> Fmt.str "%a" HL.pp_value v
        | Heaplang.Interp.Error m -> m
        | Heaplang.Interp.Timeout -> "timeout")

(* Ghost commands: unit tests. *)
let test_ghost_cmds () =
  let prog = { V.procs = []; preds = Suite.Programs.clist_preds; invs = [] } in
  let st = St.create ~penv:Suite.Programs.clist_preds () in
  (* fold nil: p = -1, n = 0 *)
  let st =
    St.add_pure (St.add_pure st (T.eq (T.var "p") (T.int (-1))))
      (T.eq (T.var "n") (T.int 0))
  in
  let sts = V.exec_ghost prog st (V.Fold ("clist", [ T.var "p"; T.var "n" ])) in
  (match sts with
  | [ st' ] ->
      Alcotest.(check int) "pred chunk" 1 (List.length st'.St.chunks)
  | _ -> Alcotest.fail "fold yields one state");
  (* ghost alloc + update on MaxNat *)
  let st = St.create () in
  let sts = V.exec_ghost prog st (V.GAlloc ("γ", GV.Max_nat (T.int 1))) in
  match sts with
  | [ st ] -> (
      let sts =
        V.exec_ghost prog st
          (V.Update ("γ", GV.Max_nat (T.int 1), GV.Max_nat (T.int 5)))
      in
      match sts with
      | [ st ] -> (
          (* downgrade must fail *)
          match
            V.exec_ghost prog st
              (V.Update ("γ", GV.Max_nat (T.int 5), GV.Max_nat (T.int 2)))
          with
          | _ -> Alcotest.fail "monotone downgrade must fail"
          | exception St.Verification_error _ -> ())
      | _ -> Alcotest.fail "update yields one state")
  | _ -> Alcotest.fail "alloc yields one state"

(* Regression: a predicate whose body is unstable at declaration must
   be rejected before any symbolic execution — [Assertion.stable]'s
   [Pred _ -> true] case is only sound because [State.create] enforces
   stability of every definition (DA012). *)
let test_unstable_pred_decl () =
  let shaky =
    {
      A.pname = "shaky";
      params = [ "p" ];
      body = A.Pure (T.eq (Baselogic.Hterm.deref (T.var "p")) (T.int 0));
    }
  in
  let preds = Smap.of_list [ ("shaky", shaky) ] in
  let user =
    {
      V.pname = "user";
      params = [ "p" ];
      requires = A.Pred ("shaky", [ T.var "p" ]);
      ensures = A.Emp;
      body = HL.Val HL.Unit;
      invariants = [];
      ghost = [];
    }
  in
  (match V.verify_proc { V.procs = [ user ]; preds; invs = [] } user with
  | V.Verified -> Alcotest.fail "unstable predicate body must be rejected"
  | (V.Timeout _ | V.Resource_out _ | V.Crashed _) as o ->
      Alcotest.failf "unstable predicate: unexpected outcome %a" V.pp_outcome o
  | V.Failed m ->
      let mentions_da012 =
        let n = String.length m in
        let rec go i = i + 5 <= n && (String.sub m i 5 = "DA012" || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "failure names DA012" true mentions_da012);
  (* the stable clist definitions still load fine *)
  ignore (St.create ~penv:Suite.Programs.clist_preds ())

(* Scheduler permutation: verdicts are independent of [--seed]. The
   symbolic executor verifies every par branch under every schedule —
   the seed only permutes exploration order — so positives stay
   verified and negatives keep failing, message for message. *)
let test_seed_independence () =
  List.iter
    (fun name ->
      let e =
        match
          List.find_opt
            (fun (e : Suite.Programs.entry) -> String.equal e.name name)
            Suite.Programs.all
        with
        | Some e -> e
        | None -> Alcotest.failf "no suite entry %s" name
      in
      let base = V.verify e.prog in
      List.iter
        (fun seed ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: seed %d ≡ seed 0" name seed)
            true
            (V.verify ~seed e.prog = base))
        [ 1; 2; 3 ])
    [ "spinlock"; "ticket_lock"; "treiber"; "racy_incr"; "lock_noinv" ]

(* The runtime side of DA026: a nested atomic section is rejected by
   the symbolic executor itself (mask discipline), not only by the
   static analyzer. *)
let test_nested_atomic_exec () =
  let c =
    match
      List.find_opt
        (fun (c : Suite.Ill_formed.case) ->
          String.equal c.Suite.Ill_formed.name "nested_atomic")
        Suite.Ill_formed.all
    with
    | Some c -> c
    | None -> Alcotest.fail "no ill-formed case nested_atomic"
  in
  match V.verify c.Suite.Ill_formed.prog with
  | [ (_, V.Failed m) ] ->
      let mentions_da026 =
        let n = String.length m in
        let rec go i = i + 5 <= n && (String.sub m i 5 = "DA026" || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "failure names DA026" true mentions_da026
  | os ->
      Alcotest.failf "nested atomic: expected one failure, got %a"
        Fmt.(list ~sep:sp (pair string V.pp_outcome))
        os

let () =
  Alcotest.run "verifier"
    [
      ("suite", suite_cases);
      ("stable-variants", stable_variant_cases);
      ( "sessions",
        [
          Alcotest.test_case "session-oneshot-identical" `Quick
            test_session_oneshot_identical;
        ] );
      ( "destabilization",
        [
          Alcotest.test_case "heap-dep-toggle" `Quick test_heap_dep_toggle;
          Alcotest.test_case "mutation-invalidates" `Quick
            test_mutation_invalidates;
          Alcotest.test_case "resolution" `Quick test_resolution;
        ] );
      ( "state",
        [
          Alcotest.test_case "inhale-consume" `Quick test_inhale_consume;
          Alcotest.test_case "ghost-cmds" `Quick test_ghost_cmds;
          Alcotest.test_case "unstable-pred-decl" `Quick
            test_unstable_pred_decl;
        ] );
      ( "integration",
        [
          Alcotest.test_case "generated-sizes" `Quick test_generated_sizes;
          Alcotest.test_case "spec-mutations" `Quick test_spec_mutations;
          Alcotest.test_case "verify-then-run" `Quick test_verify_then_run;
          Alcotest.test_case "seed-independence" `Quick
            test_seed_independence;
          Alcotest.test_case "nested-atomic-exec" `Quick
            test_nested_atomic_exec;
        ] );
    ]
