(** Solver tests: unit cases for each component, end-to-end
    sat/unsat cases, and a differential property test — random small
    formulas decided both by the solver and by brute-force enumeration
    over a small domain. *)

open Smt
open Term

let check_result name expected asserts () =
  let r = Solver.check_sat asserts in
  let s =
    match r with
    | Solver.Sat _ -> "sat"
    | Solver.Unsat -> "unsat"
    | Solver.Unknown -> "unknown"
    | Solver.Resource_out _ -> "resource-out"
  in
  Alcotest.(check string) name expected s

let x = var "x"
let y = var "y"
let z = var "z"

let solver_units =
  [
    ("trivial-true", "sat", [ tru ]);
    ("contradiction", "unsat", [ eq x (int 1); eq x (int 2) ]);
    ("lt-antisym", "unsat", [ lt x y; lt y x ]);
    ("le-chain", "unsat", [ le x y; le y z; gt x z ]);
    ("lin-system", "sat", [ eq (add x y) (int 3); eq (sub x y) (int 1) ]);
    ("parity", "unsat", [ eq (mul (int 2) x) (int 3) ]);
    ("congruence", "unsat", [ neq (app "f" [ x ]) (app "f" [ y ]); eq x y ]);
    ( "cong-via-lia",
      "unsat",
      [ neq (app "f" [ x ]) (app "f" [ y ]); le x y; le y x ] );
    ("f-distinct", "sat", [ neq (app "f" [ x ]) (app "f" [ y ]) ]);
    ( "pigeonhole-2",
      "unsat",
      Suite.Generators.pigeonhole 2 );
    ( "distinct-3-in-2",
      "unsat",
      [
        neq x y; neq y z; neq x z;
        le (int 1) x; le x (int 2);
        le (int 1) y; le y (int 2);
        le (int 1) z; le z (int 2);
      ] );
    ("ite-int", "unsat", [ eq (ite (lt x y) (int 1) (int 2)) (int 1); ge x y ]);
    ("strict-int-gap", "unsat", [ lt x y; gt (add x (int 1)) y ]);
    ( "cong-through-arith",
      "unsat",
      [ eq x y; neq (app "f" [ add x (int 1) ]) (app "f" [ add y (int 1) ]) ] );
    ("bool-var", "sat", [ or_ [ bvar "p"; bvar "q" ]; not_ (bvar "p") ]);
    ( "iff",
      "unsat",
      [ iff (bvar "p") (bvar "q"); bvar "p"; not_ (bvar "q") ] );
    ("uf-pred", "unsat", [ pred "P" [ x ]; not_ (pred "P" [ y ]); eq x y ]);
    ( "nonlinear-abstraction",
      "unsat",
      [ neq (mul x y) (mul x y) ] );
  ]
  |> List.map (fun (n, e, a) -> Alcotest.test_case n `Quick (check_result n e a))

(* Model soundness: on Sat, the returned model satisfies the formula. *)
let test_model_soundness () =
  let asserts =
    [ eq (add x y) (int 7); lt x y; ge x (int 0); neq x (int 1) ]
  in
  match Solver.check_sat asserts with
  | Solver.Sat m ->
      let env = m.Solver.ints in
      List.iter
        (fun t ->
          match Term.eval_bool ~env t with
          | Some b -> Alcotest.(check bool) (Term.to_string t) true b
          | None -> Alcotest.fail "model incomplete")
        asserts
  | _ -> Alcotest.fail "expected sat"

(* Simplex unit tests *)

let test_simplex () =
  let open Stdx in
  let s = Simplex.create () in
  let le_ l = Simplex.Linexp.of_list l in
  Simplex.assert_atom s (le_ [ ("a", Q.one); ("b", Q.one) ]) Simplex.Le (Q.of_int 5);
  Simplex.assert_atom s (le_ [ ("a", Q.one) ]) Simplex.Ge (Q.of_int 3);
  Simplex.assert_atom s (le_ [ ("b", Q.one) ]) Simplex.Ge (Q.of_int 3);
  (match Simplex.check_rational s with
  | Simplex.Unsat -> ()
  | Simplex.Sat -> Alcotest.fail "3+3 > 5 should be unsat");
  let s2 = Simplex.create () in
  Simplex.assert_atom s2 (le_ [ ("a", Q.of_int 2); ("b", Q.of_int 3) ]) Simplex.Eq (Q.of_int 12);
  Simplex.assert_atom s2 (le_ [ ("a", Q.one) ]) Simplex.Ge Q.zero;
  Simplex.assert_atom s2 (le_ [ ("b", Q.one) ]) Simplex.Ge Q.zero;
  match Simplex.check_int s2 with
  | Simplex.IModel m ->
      let a = Stdx.Smap.find "a" m and b = Stdx.Smap.find "b" m in
      Alcotest.(check int) "2a+3b=12" 12 ((2 * a) + (3 * b))
  | _ -> Alcotest.fail "2a+3b=12 has integer solutions"

(* Congruence closure unit tests *)

let test_cc () =
  let cc = Cc.create () in
  let nx = Cc.node_of_term cc (var "x") in
  let ny = Cc.node_of_term cc (var "y") in
  let fx = Cc.alloc cc (Cc.Fapp ("f", [ nx ])) in
  let fy = Cc.alloc cc (Cc.Fapp ("f", [ ny ])) in
  let ffx = Cc.alloc cc (Cc.Fapp ("f", [ fx ])) in
  let ffy = Cc.alloc cc (Cc.Fapp ("f", [ fy ])) in
  Alcotest.(check bool) "apart" false (Cc.are_equal cc fx fy);
  Cc.assert_eq cc nx ny;
  Alcotest.(check bool) "congruent" true (Cc.are_equal cc fx fy);
  Alcotest.(check bool) "nested congruent" true (Cc.are_equal cc ffx ffy);
  Cc.assert_neq cc ffx ffy;
  Alcotest.(check bool) "inconsistent" false (Cc.consistent cc)

let test_cc_numbers () =
  let cc = Cc.create () in
  let n1 = Cc.node_of_term cc (Term.int 1) in
  let n2 = Cc.node_of_term cc (Term.int 2) in
  Cc.assert_eq cc n1 n2;
  Alcotest.(check bool) "1 ≠ 2" false (Cc.consistent cc)

(* SAT solver unit tests *)

let test_sat () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  let pos v = Sat.lit_of_var v and neg v = Sat.lit_of_var ~neg:true v in
  ignore (Sat.add_clause s [ pos a; pos b ]);
  ignore (Sat.add_clause s [ neg a; pos b ]);
  ignore (Sat.add_clause s [ pos a; neg b ]);
  (match Sat.solve s with
  | Sat.Sat ->
      Alcotest.(check bool) "a and b" true (Sat.model_value s a && Sat.model_value s b)
  | _ -> Alcotest.fail "sat expected");
  ignore (Sat.add_clause s [ neg a; neg b ]);
  match Sat.solve s with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "unsat expected"

(* Differential testing: random formulas vs brute-force enumeration. *)

let gen_term : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  let vars = [ "x"; "y"; "z" ] in
  let rec atom n =
    let base =
      oneof
        [
          map Term.int (int_range (-3) 3);
          map Term.var (oneofl vars);
        ]
    in
    if n <= 0 then base
    else
      frequency
        [
          (3, base);
          ( 2,
            map2 Term.add (atom (n - 1)) (atom (n - 1)) );
          (1, map2 Term.sub (atom (n - 1)) (atom (n - 1)));
        ]
  in
  let rec form n =
    let cmp =
      oneof
        [
          map2 Term.eq (atom 1) (atom 1);
          map2 Term.le (atom 1) (atom 1);
          map2 Term.lt (atom 1) (atom 1);
        ]
    in
    if n <= 0 then cmp
    else
      frequency
        [
          (3, cmp);
          (2, map Term.not_ (form (n - 1)));
          (2, map2 (fun a b -> Term.and_ [ a; b ]) (form (n - 1)) (form (n - 1)));
          (2, map2 (fun a b -> Term.or_ [ a; b ]) (form (n - 1)) (form (n - 1)));
          (1, map2 Term.implies (form (n - 1)) (form (n - 1)));
        ]
  in
  form 3

let brute_force_sat (t : Term.t) : bool =
  let dom = [ -3; -2; -1; 0; 1; 2; 3; 4; 5 ] in
  List.exists
    (fun vx ->
      List.exists
        (fun vy ->
          List.exists
            (fun vz ->
              let env =
                Stdx.Smap.of_list [ ("x", vx); ("y", vy); ("z", vz) ]
              in
              Term.eval_bool ~env t = Some true)
            dom)
        dom)
    dom

let differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"solver-vs-brute-force" ~count:300
       (QCheck.make ~print:Term.to_string gen_term)
       (fun t ->
         match Solver.check_sat [ t ] with
         | Solver.Sat m ->
             (* The model must actually satisfy the formula. *)
             let env = m.Solver.ints in
             let env =
               List.fold_left
                 (fun env v ->
                   if Stdx.Smap.mem v env then env else Stdx.Smap.add v 0 env)
                 env [ "x"; "y"; "z" ]
             in
             Term.eval_bool ~env t = Some true
         | Solver.Unsat ->
             (* Brute force over a domain wide enough for ±3 literals
                and depth-1 arithmetic: if the solver says unsat, the
                domain search must find nothing. *)
             not (brute_force_sat t)
         | Solver.Unknown | Solver.Resource_out _ -> true))

let entails_cases =
  [
    Alcotest.test_case "entails-valid" `Quick (fun () ->
        Alcotest.(check bool) "x+1>x" true
          (Solver.entails_bool (gt (add x (int 1)) x)));
    Alcotest.test_case "entails-hyps" `Quick (fun () ->
        Alcotest.(check bool) "x=1 ⊨ x>0" true
          (Solver.entails_bool ~hyps:[ eq x (int 1) ] (gt x (int 0))));
    Alcotest.test_case "entails-invalid" `Quick (fun () ->
        Alcotest.(check bool) "x>0 invalid" false
          (Solver.entails_bool (gt x (int 0))));
  ]


(* Differential simplex test: random integer constraint systems over a
   small box, solver verdict vs exhaustive search. *)

let gen_lia_system :
    ((int * int * int) * Simplex.op * int) list QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    map2
      (fun (a, b, c) (op, k) -> ((a, b, c), op, k))
      (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3))
      (pair
         (oneofl [ Simplex.Le; Simplex.Lt; Simplex.Ge; Simplex.Gt; Simplex.Eq ])
         (int_range (-6) 6))
  in
  list_size (int_range 1 6) atom

let lia_brute_sat (atoms : ((int * int * int) * Simplex.op * int) list) =
  let dom = Stdx.Listx.range (-7) 8 in
  List.exists
    (fun x ->
      List.exists
        (fun y ->
          List.exists
            (fun z ->
              List.for_all
                (fun ((a, b, c), op, k) ->
                  let v = (a * x) + (b * y) + (c * z) in
                  match op with
                  | Simplex.Le -> v <= k
                  | Simplex.Lt -> v < k
                  | Simplex.Ge -> v >= k
                  | Simplex.Gt -> v > k
                  | Simplex.Eq -> v = k)
                atoms)
            dom)
        dom)
    dom

let simplex_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"simplex-vs-brute-force" ~count:300
       (QCheck.make gen_lia_system)
       (fun atoms ->
         let s = Simplex.create () in
         let open Stdx in
         List.iter
           (fun ((a, b, c), op, k) ->
             let e =
               Simplex.Linexp.of_list
                 [ ("x", Q.of_int a); ("y", Q.of_int b); ("z", Q.of_int c) ]
             in
             Simplex.assert_atom s e op (Q.of_int k))
           atoms;
         match Simplex.check_int s with
         | Simplex.IModel m ->
             (* model must satisfy every atom *)
             let get v = Option.value ~default:0 (Stdx.Smap.find_opt v m) in
             let x = get "x" and y = get "y" and z = get "z" in
             List.for_all
               (fun ((a, b, c), op, k) ->
                 let v = (a * x) + (b * y) + (c * z) in
                 match op with
                 | Simplex.Le -> v <= k
                 | Simplex.Lt -> v < k
                 | Simplex.Ge -> v >= k
                 | Simplex.Gt -> v > k
                 | Simplex.Eq -> v = k)
               atoms
         | Simplex.IUnsat ->
             (* brute force over the box must find nothing (the box is
                wide enough for coefficients/constants of this size to
                have a solution inside if one exists at all — checked
                empirically; a false negative here would fail) *)
             not (lia_brute_sat atoms)
         | Simplex.IResource_out -> true))

(* Random congruence-closure instances vs a naive fixpoint oracle. *)
let cc_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"cc-vs-union-fixpoint" ~count:200
       QCheck.(
         make
           Gen.(
             list_size (int_range 1 10)
               (pair (int_bound 4) (int_bound 4))))
       (fun eqs ->
         (* terms: x0..x4 and f(x0)..f(x4); assert equalities between
            the base variables, check congruence of the f-images. *)
         let cc = Cc.create () in
         let xs = Array.init 5 (fun i -> Cc.node_of_term cc (var (Printf.sprintf "x%d" i))) in
         let fs = Array.map (fun n -> Cc.alloc cc (Cc.Fapp ("f", [ n ]))) xs in
         List.iter (fun (i, j) -> Cc.assert_eq cc xs.(i) xs.(j)) eqs;
         (* oracle: union-find on indices *)
         let uf = Stdx.Union_find.create () in
         for _ = 0 to 4 do ignore (Stdx.Union_find.make uf) done;
         List.iter (fun (i, j) -> ignore (Stdx.Union_find.union uf i j)) eqs;
         List.for_all
           (fun (i, j) ->
             Stdx.Union_find.equiv uf i j
             = Cc.are_equal cc fs.(i) fs.(j))
           (List.concat_map
              (fun i -> List.map (fun j -> (i, j)) [ 0; 1; 2; 3; 4 ])
              [ 0; 1; 2; 3; 4 ])))

(* ------------------------------------------------------------------ *)
(* Incremental sessions *)

let verdict_kind = function
  | Solver.Valid -> "valid"
  | Solver.Invalid _ -> "invalid"
  | Solver.Undecided -> "undecided"
  | Solver.Gave_up _ -> "gave-up"

(* Counter regressions: the representative-bucketed combination keeps
   the euf-chain near-linear; pin the Stats counters so a quadratic
   regression shows up as a count, not as a slow test. *)
let test_euf_chain_counts () =
  Stats.reset ();
  (match Solver.check_sat (Suite.Generators.euf_chain 24) with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "euf-chain must be unsat");
  let s = Stats.snapshot () in
  Alcotest.(check int) "one query" 1 s.Stats.queries;
  Alcotest.(check int) "no combination timeouts" 0 s.Stats.combination_timeouts;
  (* Theory checks include the core-minimization deletion probes, which
     are linear in the chain length (one pass of drops plus retries); a
     quadratic combination would push this into the hundreds. *)
  Alcotest.(check bool)
    (Printf.sprintf "theory checks linear (got %d)" s.Stats.theory_checks)
    true
    (s.Stats.theory_checks <= 4 * 24);
  (* Equality propagation must stay linear in the chain length {e per
     check}: the anchor-chain scheme propagates at most one equality
     per class member, where the old all-pairs scan produced ~k²/2. *)
  Alcotest.(check bool)
    (Printf.sprintf "eq propagations linear per check (got %d over %d checks)"
       s.Stats.eq_propagations s.Stats.theory_checks)
    true
    (s.Stats.eq_propagations <= s.Stats.theory_checks * 24)

let test_pigeonhole_counts () =
  Stats.reset ();
  (match Solver.check_sat (Suite.Generators.pigeonhole 4) with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole must be unsat");
  let s = Stats.snapshot () in
  Alcotest.(check int) "one query" 1 s.Stats.queries;
  (* Purely propositional: the theory solver never sees a full model
     (conflicts are found at the SAT level), and the conflict count is
     what makes PHP(4) hard. *)
  Alcotest.(check int) "no theory checks" 0 s.Stats.theory_checks;
  Alcotest.(check bool) "sat conflicts happened" true (s.Stats.sat_conflicts > 0)

let test_session_euf_chain () =
  Stats.reset ();
  let s = Session.create () in
  let xi i = var (Printf.sprintf "x%d" i) in
  List.iter
    (fun i ->
      Session.push s;
      Session.assert_hyp s (eq (xi i) (xi (i + 1))))
    (List.init 24 Fun.id);
  let goal = eq (app "f" [ xi 0 ]) (app "f" [ xi 24 ]) in
  (match Session.check_goal s goal with
  | Solver.Valid -> ()
  | v -> Alcotest.failf "chain goal should be valid, got %s" (verdict_kind v));
  let st = Stats.snapshot () in
  Alcotest.(check int) "one session check" 1 st.Stats.session_checks;
  Alcotest.(check int) "no fallbacks" 0 st.Stats.session_fallbacks;
  Alcotest.(check int) "no one-shot queries" 0 st.Stats.queries;
  (* One check establishes the context model (cached thereafter); the
     negated goal is a disequality between applications, so the session
     probes its two strict branches — three theory checks total,
     however long the chain. *)
  Alcotest.(check int) "three theory checks" 3 st.Stats.theory_checks

(* Pop-then-reassert: retracting a frame must actually retract its
   facts, and re-asserting the same formula afterwards must reuse the
   solver state correctly (slack memo, purification). *)
let test_session_pop_reassert () =
  let s = Session.create () in
  let goal = gt (add x y) (int 1) in
  let hyp = eq (add x y) (int 2) in
  Alcotest.(check string) "unconstrained" "invalid"
    (verdict_kind (Session.check_goal s goal));
  Session.push s;
  Session.assert_hyp s hyp;
  Alcotest.(check string) "constrained" "valid"
    (verdict_kind (Session.check_goal s goal));
  Session.pop s;
  Alcotest.(check string) "retracted" "invalid"
    (verdict_kind (Session.check_goal s goal));
  Session.push s;
  Session.assert_hyp s hyp;
  Alcotest.(check string) "re-asserted" "valid"
    (verdict_kind (Session.check_goal s goal));
  Session.pop s

(* Differential: a session driven through a random push/pop/assert
   interleaving must agree with the one-shot [Solver.entails] on every
   check, with the hypotheses in scope at that point. Asserts landing
   after pops exercise pop-then-reassert on shared solver state. *)
type sess_op = SPush | SPop | SAssert of Term.t | SCheck of Term.t

let pp_sess_op = function
  | SPush -> "push"
  | SPop -> "pop"
  | SAssert t -> "assert " ^ Term.to_string t
  | SCheck t -> "check " ^ Term.to_string t

let gen_sess_ops : sess_op list QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    oneof
      [
        map Term.int (int_range (-3) 3);
        map Term.var (oneofl [ "x"; "y"; "z" ]);
      ]
  in
  let atom =
    oneof [ base; map (fun t -> Term.app "f" [ t ]) base; map2 Term.add base base ]
  in
  let cmp =
    oneof [ map2 Term.eq atom atom; map2 Term.le atom atom; map2 Term.lt atom atom ]
  in
  let lit = oneof [ cmp; map Term.not_ cmp ] in
  let form =
    (* conjunctions assert cleanly; disjunctions in goals exercise
       [neg_atoms]; nested structure forces the fallback path *)
    oneof
      [
        lit;
        map2 (fun a b -> Term.and_ [ a; b ]) lit lit;
        map2 (fun a b -> Term.or_ [ a; b ]) lit lit;
        map2 (fun a b -> Term.or_ [ a; Term.and_ [ a; b ] ]) lit lit;
      ]
  in
  let op =
    frequency
      [
        (2, return SPush);
        (2, return SPop);
        (3, map (fun t -> SAssert t) form);
        (4, map (fun t -> SCheck t) form);
      ]
  in
  list_size (int_range 6 24) op

let session_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"session-vs-oneshot" ~count:120
       (QCheck.make
          ~print:(fun ops -> String.concat "; " (List.map pp_sess_op ops))
          gen_sess_ops)
       (fun ops ->
         let s = Session.create () in
         (* mirror: stack of frames, each newest-first *)
         let frames = ref [ [] ] in
         let ok = ref true in
         List.iter
           (fun op ->
             match op with
             | SPush ->
                 Session.push s;
                 frames := [] :: !frames
             | SPop -> (
                 match !frames with
                 | _ :: (_ :: _ as rest) ->
                     Session.pop s;
                     frames := rest
                 | _ -> () (* no open frame: skip *))
             | SAssert t -> (
                 Session.assert_hyp s t;
                 match !frames with
                 | f :: rest -> frames := (t :: f) :: rest
                 | [] -> assert false)
             | SCheck g ->
                 let hyps = List.rev (List.concat !frames) in
                 let expect = Solver.entails ~hyps g in
                 let got = Session.check_goal s g in
                 if verdict_kind expect <> verdict_kind got then ok := false)
           ops;
         !ok))

let session_cases =
  [
    Alcotest.test_case "euf-chain-counts" `Quick test_euf_chain_counts;
    Alcotest.test_case "pigeonhole-counts" `Quick test_pigeonhole_counts;
    Alcotest.test_case "session-euf-chain" `Quick test_session_euf_chain;
    Alcotest.test_case "session-pop-reassert" `Quick test_session_pop_reassert;
    session_differential;
  ]

let () =
  Alcotest.run "smt"
    [
      ("solver", solver_units);
      ( "model",
        [ Alcotest.test_case "model-soundness" `Quick test_model_soundness ] );
      ("simplex", [ Alcotest.test_case "units" `Quick test_simplex ]);
      ( "cc",
        [
          Alcotest.test_case "congruence" `Quick test_cc;
          Alcotest.test_case "numbers" `Quick test_cc_numbers;
        ] );
      ("sat", [ Alcotest.test_case "units" `Quick test_sat ]);
      ("differential", [ differential; simplex_differential; cc_random ]);
      ("entails", entails_cases);
      ("session", session_cases);
    ]