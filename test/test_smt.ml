(** Solver tests: unit cases for each component, end-to-end
    sat/unsat cases, and a differential property test — random small
    formulas decided both by the solver and by brute-force enumeration
    over a small domain. *)

open Smt
open Term

let check_result name expected asserts () =
  let r = Solver.check_sat asserts in
  let s =
    match r with
    | Solver.Sat _ -> "sat"
    | Solver.Unsat -> "unsat"
    | Solver.Unknown -> "unknown"
    | Solver.Resource_out _ -> "resource-out"
  in
  Alcotest.(check string) name expected s

let x = var "x"
let y = var "y"
let z = var "z"

let solver_units =
  [
    ("trivial-true", "sat", [ tru ]);
    ("contradiction", "unsat", [ eq x (int 1); eq x (int 2) ]);
    ("lt-antisym", "unsat", [ lt x y; lt y x ]);
    ("le-chain", "unsat", [ le x y; le y z; gt x z ]);
    ("lin-system", "sat", [ eq (add x y) (int 3); eq (sub x y) (int 1) ]);
    ("parity", "unsat", [ eq (mul (int 2) x) (int 3) ]);
    ("congruence", "unsat", [ neq (app "f" [ x ]) (app "f" [ y ]); eq x y ]);
    ( "cong-via-lia",
      "unsat",
      [ neq (app "f" [ x ]) (app "f" [ y ]); le x y; le y x ] );
    ("f-distinct", "sat", [ neq (app "f" [ x ]) (app "f" [ y ]) ]);
    ( "pigeonhole-2",
      "unsat",
      Suite.Generators.pigeonhole 2 );
    ( "distinct-3-in-2",
      "unsat",
      [
        neq x y; neq y z; neq x z;
        le (int 1) x; le x (int 2);
        le (int 1) y; le y (int 2);
        le (int 1) z; le z (int 2);
      ] );
    ("ite-int", "unsat", [ eq (ite (lt x y) (int 1) (int 2)) (int 1); ge x y ]);
    ("strict-int-gap", "unsat", [ lt x y; gt (add x (int 1)) y ]);
    ( "cong-through-arith",
      "unsat",
      [ eq x y; neq (app "f" [ add x (int 1) ]) (app "f" [ add y (int 1) ]) ] );
    ("bool-var", "sat", [ or_ [ bvar "p"; bvar "q" ]; not_ (bvar "p") ]);
    ( "iff",
      "unsat",
      [ iff (bvar "p") (bvar "q"); bvar "p"; not_ (bvar "q") ] );
    ("uf-pred", "unsat", [ pred "P" [ x ]; not_ (pred "P" [ y ]); eq x y ]);
    ( "nonlinear-abstraction",
      "unsat",
      [ neq (mul x y) (mul x y) ] );
  ]
  |> List.map (fun (n, e, a) -> Alcotest.test_case n `Quick (check_result n e a))

(* Model soundness: on Sat, the returned model satisfies the formula. *)
let test_model_soundness () =
  let asserts =
    [ eq (add x y) (int 7); lt x y; ge x (int 0); neq x (int 1) ]
  in
  match Solver.check_sat asserts with
  | Solver.Sat m ->
      let env = m.Solver.ints in
      List.iter
        (fun t ->
          match Term.eval_bool ~env t with
          | Some b -> Alcotest.(check bool) (Term.to_string t) true b
          | None -> Alcotest.fail "model incomplete")
        asserts
  | _ -> Alcotest.fail "expected sat"

(* Simplex unit tests *)

let test_simplex () =
  let open Stdx in
  let s = Simplex.create () in
  let le_ l = Simplex.Linexp.of_list l in
  Simplex.assert_atom s (le_ [ ("a", Q.one); ("b", Q.one) ]) Simplex.Le (Q.of_int 5);
  Simplex.assert_atom s (le_ [ ("a", Q.one) ]) Simplex.Ge (Q.of_int 3);
  Simplex.assert_atom s (le_ [ ("b", Q.one) ]) Simplex.Ge (Q.of_int 3);
  (match Simplex.check_rational s with
  | Simplex.Unsat -> ()
  | Simplex.Sat -> Alcotest.fail "3+3 > 5 should be unsat");
  let s2 = Simplex.create () in
  Simplex.assert_atom s2 (le_ [ ("a", Q.of_int 2); ("b", Q.of_int 3) ]) Simplex.Eq (Q.of_int 12);
  Simplex.assert_atom s2 (le_ [ ("a", Q.one) ]) Simplex.Ge Q.zero;
  Simplex.assert_atom s2 (le_ [ ("b", Q.one) ]) Simplex.Ge Q.zero;
  match Simplex.check_int s2 with
  | Simplex.IModel m ->
      let a = Stdx.Smap.find "a" m and b = Stdx.Smap.find "b" m in
      Alcotest.(check int) "2a+3b=12" 12 ((2 * a) + (3 * b))
  | _ -> Alcotest.fail "2a+3b=12 has integer solutions"

(* Congruence closure unit tests *)

let test_cc () =
  let cc = Cc.create () in
  let nx = Cc.node_of_term cc (var "x") in
  let ny = Cc.node_of_term cc (var "y") in
  let fx = Cc.alloc cc (Cc.Fapp ("f", [ nx ])) in
  let fy = Cc.alloc cc (Cc.Fapp ("f", [ ny ])) in
  let ffx = Cc.alloc cc (Cc.Fapp ("f", [ fx ])) in
  let ffy = Cc.alloc cc (Cc.Fapp ("f", [ fy ])) in
  Alcotest.(check bool) "apart" false (Cc.are_equal cc fx fy);
  Cc.assert_eq cc nx ny;
  Alcotest.(check bool) "congruent" true (Cc.are_equal cc fx fy);
  Alcotest.(check bool) "nested congruent" true (Cc.are_equal cc ffx ffy);
  Cc.assert_neq cc ffx ffy;
  Alcotest.(check bool) "inconsistent" false (Cc.consistent cc)

let test_cc_numbers () =
  let cc = Cc.create () in
  let n1 = Cc.node_of_term cc (Term.int 1) in
  let n2 = Cc.node_of_term cc (Term.int 2) in
  Cc.assert_eq cc n1 n2;
  Alcotest.(check bool) "1 ≠ 2" false (Cc.consistent cc)

(* SAT solver unit tests *)

let test_sat () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  let pos v = Sat.lit_of_var v and neg v = Sat.lit_of_var ~neg:true v in
  ignore (Sat.add_clause s [ pos a; pos b ]);
  ignore (Sat.add_clause s [ neg a; pos b ]);
  ignore (Sat.add_clause s [ pos a; neg b ]);
  (match Sat.solve s with
  | Sat.Sat ->
      Alcotest.(check bool) "a and b" true (Sat.model_value s a && Sat.model_value s b)
  | _ -> Alcotest.fail "sat expected");
  ignore (Sat.add_clause s [ neg a; neg b ]);
  match Sat.solve s with
  | Sat.Unsat -> ()
  | _ -> Alcotest.fail "unsat expected"

(* Differential testing: random formulas vs brute-force enumeration. *)

let gen_term : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  let vars = [ "x"; "y"; "z" ] in
  let rec atom n =
    let base =
      oneof
        [
          map Term.int (int_range (-3) 3);
          map Term.var (oneofl vars);
        ]
    in
    if n <= 0 then base
    else
      frequency
        [
          (3, base);
          ( 2,
            map2 Term.add (atom (n - 1)) (atom (n - 1)) );
          (1, map2 Term.sub (atom (n - 1)) (atom (n - 1)));
        ]
  in
  let rec form n =
    let cmp =
      oneof
        [
          map2 Term.eq (atom 1) (atom 1);
          map2 Term.le (atom 1) (atom 1);
          map2 Term.lt (atom 1) (atom 1);
        ]
    in
    if n <= 0 then cmp
    else
      frequency
        [
          (3, cmp);
          (2, map Term.not_ (form (n - 1)));
          (2, map2 (fun a b -> Term.and_ [ a; b ]) (form (n - 1)) (form (n - 1)));
          (2, map2 (fun a b -> Term.or_ [ a; b ]) (form (n - 1)) (form (n - 1)));
          (1, map2 Term.implies (form (n - 1)) (form (n - 1)));
        ]
  in
  form 3

let brute_force_sat (t : Term.t) : bool =
  let dom = [ -3; -2; -1; 0; 1; 2; 3; 4; 5 ] in
  List.exists
    (fun vx ->
      List.exists
        (fun vy ->
          List.exists
            (fun vz ->
              let env =
                Stdx.Smap.of_list [ ("x", vx); ("y", vy); ("z", vz) ]
              in
              Term.eval_bool ~env t = Some true)
            dom)
        dom)
    dom

let differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"solver-vs-brute-force" ~count:300
       (QCheck.make ~print:Term.to_string gen_term)
       (fun t ->
         match Solver.check_sat [ t ] with
         | Solver.Sat m ->
             (* The model must actually satisfy the formula. *)
             let env = m.Solver.ints in
             let env =
               List.fold_left
                 (fun env v ->
                   if Stdx.Smap.mem v env then env else Stdx.Smap.add v 0 env)
                 env [ "x"; "y"; "z" ]
             in
             Term.eval_bool ~env t = Some true
         | Solver.Unsat ->
             (* Brute force over a domain wide enough for ±3 literals
                and depth-1 arithmetic: if the solver says unsat, the
                domain search must find nothing. *)
             not (brute_force_sat t)
         | Solver.Unknown | Solver.Resource_out _ -> true))

let entails_cases =
  [
    Alcotest.test_case "entails-valid" `Quick (fun () ->
        Alcotest.(check bool) "x+1>x" true
          (Solver.entails_bool (gt (add x (int 1)) x)));
    Alcotest.test_case "entails-hyps" `Quick (fun () ->
        Alcotest.(check bool) "x=1 ⊨ x>0" true
          (Solver.entails_bool ~hyps:[ eq x (int 1) ] (gt x (int 0))));
    Alcotest.test_case "entails-invalid" `Quick (fun () ->
        Alcotest.(check bool) "x>0 invalid" false
          (Solver.entails_bool (gt x (int 0))));
  ]


(* Differential simplex test: random integer constraint systems over a
   small box, solver verdict vs exhaustive search. *)

let gen_lia_system :
    ((int * int * int) * Simplex.op * int) list QCheck.Gen.t =
  let open QCheck.Gen in
  let atom =
    map2
      (fun (a, b, c) (op, k) -> ((a, b, c), op, k))
      (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3))
      (pair
         (oneofl [ Simplex.Le; Simplex.Lt; Simplex.Ge; Simplex.Gt; Simplex.Eq ])
         (int_range (-6) 6))
  in
  list_size (int_range 1 6) atom

let lia_brute_sat (atoms : ((int * int * int) * Simplex.op * int) list) =
  let dom = Stdx.Listx.range (-7) 8 in
  List.exists
    (fun x ->
      List.exists
        (fun y ->
          List.exists
            (fun z ->
              List.for_all
                (fun ((a, b, c), op, k) ->
                  let v = (a * x) + (b * y) + (c * z) in
                  match op with
                  | Simplex.Le -> v <= k
                  | Simplex.Lt -> v < k
                  | Simplex.Ge -> v >= k
                  | Simplex.Gt -> v > k
                  | Simplex.Eq -> v = k)
                atoms)
            dom)
        dom)
    dom

let simplex_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"simplex-vs-brute-force" ~count:300
       (QCheck.make gen_lia_system)
       (fun atoms ->
         let s = Simplex.create () in
         let open Stdx in
         List.iter
           (fun ((a, b, c), op, k) ->
             let e =
               Simplex.Linexp.of_list
                 [ ("x", Q.of_int a); ("y", Q.of_int b); ("z", Q.of_int c) ]
             in
             Simplex.assert_atom s e op (Q.of_int k))
           atoms;
         match Simplex.check_int s with
         | Simplex.IModel m ->
             (* model must satisfy every atom *)
             let get v = Option.value ~default:0 (Stdx.Smap.find_opt v m) in
             let x = get "x" and y = get "y" and z = get "z" in
             List.for_all
               (fun ((a, b, c), op, k) ->
                 let v = (a * x) + (b * y) + (c * z) in
                 match op with
                 | Simplex.Le -> v <= k
                 | Simplex.Lt -> v < k
                 | Simplex.Ge -> v >= k
                 | Simplex.Gt -> v > k
                 | Simplex.Eq -> v = k)
               atoms
         | Simplex.IUnsat ->
             (* brute force over the box must find nothing (the box is
                wide enough for coefficients/constants of this size to
                have a solution inside if one exists at all — checked
                empirically; a false negative here would fail) *)
             not (lia_brute_sat atoms)
         | Simplex.IResource_out -> true))

(* Random congruence-closure instances vs a naive fixpoint oracle. *)
let cc_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"cc-vs-union-fixpoint" ~count:200
       QCheck.(
         make
           Gen.(
             list_size (int_range 1 10)
               (pair (int_bound 4) (int_bound 4))))
       (fun eqs ->
         (* terms: x0..x4 and f(x0)..f(x4); assert equalities between
            the base variables, check congruence of the f-images. *)
         let cc = Cc.create () in
         let xs = Array.init 5 (fun i -> Cc.node_of_term cc (var (Printf.sprintf "x%d" i))) in
         let fs = Array.map (fun n -> Cc.alloc cc (Cc.Fapp ("f", [ n ]))) xs in
         List.iter (fun (i, j) -> Cc.assert_eq cc xs.(i) xs.(j)) eqs;
         (* oracle: union-find on indices *)
         let uf = Stdx.Union_find.create () in
         for _ = 0 to 4 do ignore (Stdx.Union_find.make uf) done;
         List.iter (fun (i, j) -> ignore (Stdx.Union_find.union uf i j)) eqs;
         List.for_all
           (fun (i, j) ->
             Stdx.Union_find.equiv uf i j
             = Cc.are_equal cc fs.(i) fs.(j))
           (List.concat_map
              (fun i -> List.map (fun j -> (i, j)) [ 0; 1; 2; 3; 4 ])
              [ 0; 1; 2; 3; 4 ])))

(* ------------------------------------------------------------------ *)
(* Incremental sessions *)

let verdict_kind = function
  | Solver.Valid -> "valid"
  | Solver.Invalid _ -> "invalid"
  | Solver.Undecided -> "undecided"
  | Solver.Gave_up _ -> "gave-up"

(* Counter regressions: the representative-bucketed combination keeps
   the euf-chain near-linear; pin the Stats counters so a quadratic
   regression shows up as a count, not as a slow test. *)
let test_euf_chain_counts () =
  Stats.reset ();
  (match Solver.check_sat (Suite.Generators.euf_chain 24) with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "euf-chain must be unsat");
  let s = Stats.snapshot () in
  Alcotest.(check int) "one query" 1 s.Stats.queries;
  Alcotest.(check int) "no combination timeouts" 0 s.Stats.combination_timeouts;
  (* Theory checks include the core-minimization deletion probes, which
     are linear in the chain length (one pass of drops plus retries); a
     quadratic combination would push this into the hundreds. *)
  Alcotest.(check bool)
    (Printf.sprintf "theory checks linear (got %d)" s.Stats.theory_checks)
    true
    (s.Stats.theory_checks <= 4 * 24);
  (* Equality propagation must stay linear in the chain length {e per
     check}: the anchor-chain scheme propagates at most one equality
     per class member, where the old all-pairs scan produced ~k²/2. *)
  Alcotest.(check bool)
    (Printf.sprintf "eq propagations linear per check (got %d over %d checks)"
       s.Stats.eq_propagations s.Stats.theory_checks)
    true
    (s.Stats.eq_propagations <= s.Stats.theory_checks * 24)

let test_pigeonhole_counts () =
  Stats.reset ();
  (match Solver.check_sat (Suite.Generators.pigeonhole 4) with
  | Solver.Unsat -> ()
  | _ -> Alcotest.fail "pigeonhole must be unsat");
  let s = Stats.snapshot () in
  Alcotest.(check int) "one query" 1 s.Stats.queries;
  (* Purely propositional: the theory solver never sees a full model
     (conflicts are found at the SAT level), and the conflict count is
     what makes PHP(4) hard. *)
  Alcotest.(check int) "no theory checks" 0 s.Stats.theory_checks;
  Alcotest.(check bool) "sat conflicts happened" true (s.Stats.sat_conflicts > 0)

let test_session_euf_chain () =
  Stats.reset ();
  let s = Session.create () in
  let xi i = var (Printf.sprintf "x%d" i) in
  List.iter
    (fun i ->
      Session.push s;
      Session.assert_hyp s (eq (xi i) (xi (i + 1))))
    (List.init 24 Fun.id);
  let goal = eq (app "f" [ xi 0 ]) (app "f" [ xi 24 ]) in
  (match Session.check_goal s goal with
  | Solver.Valid -> ()
  | v -> Alcotest.failf "chain goal should be valid, got %s" (verdict_kind v));
  let st = Stats.snapshot () in
  Alcotest.(check int) "one session check" 1 st.Stats.session_checks;
  Alcotest.(check int) "no fallbacks" 0 st.Stats.session_fallbacks;
  Alcotest.(check int) "no one-shot queries" 0 st.Stats.queries;
  (* One check establishes the context model (cached thereafter); the
     negated goal is a disequality between applications, so the session
     probes its two strict branches — three theory checks total,
     however long the chain. *)
  Alcotest.(check int) "three theory checks" 3 st.Stats.theory_checks

(* Pop-then-reassert: retracting a frame must actually retract its
   facts, and re-asserting the same formula afterwards must reuse the
   solver state correctly (slack memo, purification). *)
let test_session_pop_reassert () =
  let s = Session.create () in
  let goal = gt (add x y) (int 1) in
  let hyp = eq (add x y) (int 2) in
  Alcotest.(check string) "unconstrained" "invalid"
    (verdict_kind (Session.check_goal s goal));
  Session.push s;
  Session.assert_hyp s hyp;
  Alcotest.(check string) "constrained" "valid"
    (verdict_kind (Session.check_goal s goal));
  Session.pop s;
  Alcotest.(check string) "retracted" "invalid"
    (verdict_kind (Session.check_goal s goal));
  Session.push s;
  Session.assert_hyp s hyp;
  Alcotest.(check string) "re-asserted" "valid"
    (verdict_kind (Session.check_goal s goal));
  Session.pop s

(* Regression: the linear fast path must refuse products whose true
   magnitude exceeds its coefficient bound instead of wrapping. With x
   defined as 2^32, x*x is 2^64 — which wraps to 0 in a native int —
   and a post-multiplication bound check accepted the wrapped value,
   reporting the goal x*x = 0 as Valid. The fixed path bails to the
   theory pipeline, which must not conclude Valid. *)
let test_session_poly_no_wrap () =
  let s = Session.create () in
  Session.push s;
  Session.assert_hyp s (eq x (int (1 lsl 32)));
  (match Session.check_goal s (eq (mul x x) (int 0)) with
  | Solver.Valid -> Alcotest.fail "wrapped product accepted as Valid"
  | _ -> ());
  Session.pop s

(* Differential: a session driven through a random push/pop/assert
   interleaving must agree with the one-shot [Solver.entails] on every
   check, with the hypotheses in scope at that point. Asserts landing
   after pops exercise pop-then-reassert on shared solver state. *)
type sess_op = SPush | SPop | SAssert of Term.t | SCheck of Term.t

let pp_sess_op = function
  | SPush -> "push"
  | SPop -> "pop"
  | SAssert t -> "assert " ^ Term.to_string t
  | SCheck t -> "check " ^ Term.to_string t

let gen_sess_ops : sess_op list QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    oneof
      [
        map Term.int (int_range (-3) 3);
        map Term.var (oneofl [ "x"; "y"; "z" ]);
      ]
  in
  let atom =
    oneof [ base; map (fun t -> Term.app "f" [ t ]) base; map2 Term.add base base ]
  in
  let cmp =
    oneof [ map2 Term.eq atom atom; map2 Term.le atom atom; map2 Term.lt atom atom ]
  in
  let lit = oneof [ cmp; map Term.not_ cmp ] in
  let form =
    (* conjunctions assert cleanly; disjunctions in goals exercise
       [neg_atoms]; nested structure forces the fallback path *)
    oneof
      [
        lit;
        map2 (fun a b -> Term.and_ [ a; b ]) lit lit;
        map2 (fun a b -> Term.or_ [ a; b ]) lit lit;
        map2 (fun a b -> Term.or_ [ a; Term.and_ [ a; b ] ]) lit lit;
      ]
  in
  let op =
    frequency
      [
        (2, return SPush);
        (2, return SPop);
        (3, map (fun t -> SAssert t) form);
        (4, map (fun t -> SCheck t) form);
      ]
  in
  list_size (int_range 6 24) op

let session_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"session-vs-oneshot" ~count:120
       (QCheck.make
          ~print:(fun ops -> String.concat "; " (List.map pp_sess_op ops))
          gen_sess_ops)
       (fun ops ->
         let s = Session.create () in
         (* mirror: stack of frames, each newest-first *)
         let frames = ref [ [] ] in
         let ok = ref true in
         List.iter
           (fun op ->
             match op with
             | SPush ->
                 Session.push s;
                 frames := [] :: !frames
             | SPop -> (
                 match !frames with
                 | _ :: (_ :: _ as rest) ->
                     Session.pop s;
                     frames := rest
                 | _ -> () (* no open frame: skip *))
             | SAssert t -> (
                 Session.assert_hyp s t;
                 match !frames with
                 | f :: rest -> frames := (t :: f) :: rest
                 | [] -> assert false)
             | SCheck g ->
                 let hyps = List.rev (List.concat !frames) in
                 let expect = Solver.entails ~hyps g in
                 let got = Session.check_goal s g in
                 if verdict_kind expect <> verdict_kind got then ok := false)
           ops;
         !ok))

(* ------------------------------------------------------------------ *)
(* Hash-consed terms: differential properties against a reference AST.

   The term representation interns every node; these tests pin that the
   smart constructors still mean what the seed's plain constructors
   meant (eval / vars / subst agree with an independent reference
   implementation), and that interning delivers what it promises:
   structurally equal constructions are physically equal, and the
   canonical digest depends on structure only — never on intern ids —
   which is what lets VC-cache keys survive process restarts. *)

type iexp =
  | RInt of int
  | RVar of string
  | RApp of string * iexp
  | RAdd of iexp * iexp
  | RSub of iexp * iexp
  | RMul of iexp * iexp
  | RIte of bform * iexp * iexp

and bform =
  | RTrue
  | RFalse
  | RBvar of string
  | REq of iexp * iexp
  | RLe of iexp * iexp
  | RLt of iexp * iexp
  | RNot of bform
  | RAnd of bform * bform
  | ROr of bform * bform
  | RImp of bform * bform
  | RIff of bform * bform

let rec build_i = function
  | RInt n -> int n
  | RVar v -> var v
  | RApp (f, a) -> app f [ build_i a ]
  | RAdd (a, b) -> add (build_i a) (build_i b)
  | RSub (a, b) -> sub (build_i a) (build_i b)
  | RMul (a, b) -> mul (build_i a) (build_i b)
  | RIte (c, a, b) -> ite (build_b c) (build_i a) (build_i b)

and build_b = function
  | RTrue -> tru
  | RFalse -> fls
  | RBvar p -> bvar p
  | REq (a, b) -> eq (build_i a) (build_i b)
  | RLe (a, b) -> le (build_i a) (build_i b)
  | RLt (a, b) -> lt (build_i a) (build_i b)
  | RNot a -> not_ (build_b a)
  | RAnd (a, b) -> and_ [ build_b a; build_b b ]
  | ROr (a, b) -> or_ [ build_b a; build_b b ]
  | RImp (a, b) -> implies (build_b a) (build_b b)
  | RIff (a, b) -> iff (build_b a) (build_b b)

(* A fixed but arbitrary interpretation for uninterpreted symbols, so
   applications evaluate on both sides. *)
let uf f vs = Some ((Hashtbl.hash (f, vs) mod 17) - 8)

let rec reval_i env = function
  | RInt n -> n
  | RVar v -> Stdx.Smap.find v env
  | RApp (f, a) -> Option.get (uf f [ reval_i env a ])
  | RAdd (a, b) -> reval_i env a + reval_i env b
  | RSub (a, b) -> reval_i env a - reval_i env b
  | RMul (a, b) -> reval_i env a * reval_i env b
  | RIte (c, a, b) -> if reval_b env c then reval_i env a else reval_i env b

and reval_b env = function
  | RTrue -> true
  | RFalse -> false
  | RBvar p -> Stdx.Smap.find p env <> 0
  | REq (a, b) -> reval_i env a = reval_i env b
  | RLe (a, b) -> reval_i env a <= reval_i env b
  | RLt (a, b) -> reval_i env a < reval_i env b
  | RNot a -> not (reval_b env a)
  | RAnd (a, b) -> reval_b env a && reval_b env b
  | ROr (a, b) -> reval_b env a || reval_b env b
  | RImp (a, b) -> (not (reval_b env a)) || reval_b env b
  | RIff (a, b) -> reval_b env a = reval_b env b

let rec rvars_i acc = function
  | RInt _ -> acc
  | RVar v -> (v, Sort.Int) :: acc
  | RApp (_, a) -> rvars_i acc a
  | RAdd (a, b) | RSub (a, b) | RMul (a, b) -> rvars_i (rvars_i acc a) b
  | RIte (c, a, b) -> rvars_i (rvars_i (rvars_b acc c) a) b

and rvars_b acc = function
  | RTrue | RFalse -> acc
  | RBvar p -> (p, Sort.Bool) :: acc
  | REq (a, b) | RLe (a, b) | RLt (a, b) -> rvars_i (rvars_i acc a) b
  | RNot a -> rvars_b acc a
  | RAnd (a, b) | ROr (a, b) | RImp (a, b) | RIff (a, b) ->
      rvars_b (rvars_b acc a) b

(* Simultaneous substitution on the reference AST: replace [RVar x]
   wholesale, without re-substituting inside the replacement — the
   contract of [Term.subst]. *)
let rec rsubst_i x r = function
  | RInt _ as e -> e
  | RVar v as e -> if String.equal v x then r else e
  | RApp (f, a) -> RApp (f, rsubst_i x r a)
  | RAdd (a, b) -> RAdd (rsubst_i x r a, rsubst_i x r b)
  | RSub (a, b) -> RSub (rsubst_i x r a, rsubst_i x r b)
  | RMul (a, b) -> RMul (rsubst_i x r a, rsubst_i x r b)
  | RIte (c, a, b) -> RIte (rsubst_b x r c, rsubst_i x r a, rsubst_i x r b)

and rsubst_b x r = function
  | (RTrue | RFalse | RBvar _) as e -> e
  | REq (a, b) -> REq (rsubst_i x r a, rsubst_i x r b)
  | RLe (a, b) -> RLe (rsubst_i x r a, rsubst_i x r b)
  | RLt (a, b) -> RLt (rsubst_i x r a, rsubst_i x r b)
  | RNot a -> RNot (rsubst_b x r a)
  | RAnd (a, b) -> RAnd (rsubst_b x r a, rsubst_b x r b)
  | ROr (a, b) -> ROr (rsubst_b x r a, rsubst_b x r b)
  | RImp (a, b) -> RImp (rsubst_b x r a, rsubst_b x r b)
  | RIff (a, b) -> RIff (rsubst_b x r a, rsubst_b x r b)

let gen_iexp, gen_bform =
  let open QCheck.Gen in
  let leaf_i =
    oneof
      [
        map (fun n -> RInt n) (int_range (-5) 5);
        map (fun v -> RVar v) (oneofl [ "x"; "y"; "z" ]);
      ]
  in
  let rec go_i n =
    if n = 0 then leaf_i
    else
      frequency
        [
          (2, leaf_i);
          (1, map (fun a -> RApp ("f", a)) (go_i (n - 1)));
          (2, map2 (fun a b -> RAdd (a, b)) (go_i (n - 1)) (go_i (n - 1)));
          (2, map2 (fun a b -> RSub (a, b)) (go_i (n - 1)) (go_i (n - 1)));
          (1, map2 (fun a b -> RMul (a, b)) (go_i (n - 1)) (go_i (n - 1)));
          ( 1,
            map3
              (fun c a b -> RIte (c, a, b))
              (go_b (n - 1)) (go_i (n - 1)) (go_i (n - 1)) );
        ]
  and go_b n =
    let leaf_b =
      oneofl [ RTrue; RFalse; RBvar "p"; RBvar "q" ]
    in
    if n = 0 then leaf_b
    else
      frequency
        [
          (1, leaf_b);
          (2, map2 (fun a b -> REq (a, b)) (go_i (n - 1)) (go_i (n - 1)));
          (2, map2 (fun a b -> RLe (a, b)) (go_i (n - 1)) (go_i (n - 1)));
          (2, map2 (fun a b -> RLt (a, b)) (go_i (n - 1)) (go_i (n - 1)));
          (2, map (fun a -> RNot a) (go_b (n - 1)));
          (2, map2 (fun a b -> RAnd (a, b)) (go_b (n - 1)) (go_b (n - 1)));
          (2, map2 (fun a b -> ROr (a, b)) (go_b (n - 1)) (go_b (n - 1)));
          (1, map2 (fun a b -> RImp (a, b)) (go_b (n - 1)) (go_b (n - 1)));
          (1, map2 (fun a b -> RIff (a, b)) (go_b (n - 1)) (go_b (n - 1)));
        ]
  in
  (go_i 4, go_b 4)

let gen_env =
  let open QCheck.Gen in
  map3
    (fun vx vy vz ->
      Stdx.Smap.of_seq
        (List.to_seq
           [ ("x", vx); ("y", vy); ("z", vz); ("p", vx land 1); ("q", vy land 1) ]))
    (int_range (-8) 8) (int_range (-8) 8) (int_range (-8) 8)

let hashcons_physical_eq =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"equal-constructions-physically-equal" ~count:300
       (QCheck.make QCheck.Gen.(pair gen_iexp gen_bform))
       (fun (a, f) ->
         (* Two independent constructions of the same structure must
            intern to the same node: [==], same id, same digest. *)
         let t1 = build_i a and t2 = build_i a in
         let u1 = build_b f and u2 = build_b f in
         t1 == t2
         && Term.equal t1 t2
         && Term.id t1 = Term.id t2
         && u1 == u2
         && String.equal (Term.digest u1) (Term.digest u2)))

let hashcons_eval =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"eval-vs-reference" ~count:500
       (QCheck.make QCheck.Gen.(triple gen_iexp gen_bform gen_env))
       (fun (a, f, env) ->
         Term.eval ~env ~on_app:uf (build_i a) = Some (reval_i env a)
         && Term.eval_bool ~env ~on_app:uf (build_b f) = Some (reval_b env f)))

(* An independent [vars] over the interned representation, driven
   through [Term.view] only. *)
let rec tvars acc t =
  match Term.view t with
  | Term.Var (v, s) -> (v, s) :: acc
  | Term.Int_lit _ | Term.True | Term.False -> acc
  | Term.App (_, args) | Term.Pred (_, args) -> List.fold_left tvars acc args
  | Term.Add (a, b) | Term.Sub (a, b) | Term.Mul (a, b)
  | Term.Eq (a, b) | Term.Le (a, b) | Term.Lt (a, b)
  | Term.Implies (a, b) | Term.Iff (a, b) ->
      tvars (tvars acc a) b
  | Term.Ite (c, a, b) -> tvars (tvars (tvars acc c) a) b
  | Term.Not a -> tvars acc a
  | Term.And ts | Term.Or ts -> List.fold_left tvars acc ts

let hashcons_vars =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"vars-vs-reference" ~count:300
       (QCheck.make gen_iexp)
       (fun a ->
         let t = build_i a in
         (* Exact agreement with a view-based recomputation; constant
            folding may only ever {e drop} variables relative to the
            source AST, never invent them. *)
         Term.vars t = List.sort_uniq Stdlib.compare (tvars [] t)
         && List.for_all
              (fun v -> List.mem v (rvars_i [] a))
              (Term.vars t)))

let hashcons_subst =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"subst-vs-reference" ~count:300
       (QCheck.make QCheck.Gen.(triple gen_bform gen_iexp gen_env))
       (fun (f, r, env) ->
         (* Substituting at the term level must coincide — physically,
            thanks to interning — with substituting at the AST level
            and rebuilding; and evaluation must commute with it. *)
         let m = Stdx.Smap.singleton "x" (build_i r) in
         let t = Term.subst m (build_b f) in
         t == build_b (rsubst_b "x" r f)
         && Term.eval_bool ~env ~on_app:uf t
            = Some (reval_b env (rsubst_b "x" r f))))

(* The canonical digest, recomputed by an independent implementation of
   its spec (constructor tag byte, length-prefixed payloads, children
   by digest). Agreement on random terms pins that [Term.digest] is a
   pure function of structure — intern ids never leak in — which is
   exactly the property that makes VC-cache keys identical across
   processes and daemon restarts. *)
let rec ref_digest (t : Term.t) : string =
  let buf = Buffer.create 64 in
  let s x =
    Buffer.add_string buf (string_of_int (String.length x));
    Buffer.add_char buf ':';
    Buffer.add_string buf x
  in
  let d x = Buffer.add_string buf (ref_digest x) in
  (match Term.view t with
  | Term.Var (v, Sort.Int) -> Buffer.add_char buf 'v'; s v
  | Term.Var (v, Sort.Bool) -> Buffer.add_char buf 'b'; s v
  | Term.Int_lit n -> Buffer.add_char buf 'n'; s (string_of_int n)
  | Term.True -> Buffer.add_char buf 'T'
  | Term.False -> Buffer.add_char buf 'F'
  | Term.App (f, args) -> Buffer.add_char buf 'f'; s f; List.iter d args
  | Term.Pred (f, args) -> Buffer.add_char buf 'p'; s f; List.iter d args
  | Term.Add (a, b) -> Buffer.add_char buf '+'; d a; d b
  | Term.Sub (a, b) -> Buffer.add_char buf '-'; d a; d b
  | Term.Mul (a, b) -> Buffer.add_char buf '*'; d a; d b
  | Term.Ite (c, a, b) -> Buffer.add_char buf '?'; d c; d a; d b
  | Term.Eq (a, b) -> Buffer.add_char buf '='; d a; d b
  | Term.Le (a, b) -> Buffer.add_char buf 'l'; d a; d b
  | Term.Lt (a, b) -> Buffer.add_char buf '<'; d a; d b
  | Term.Not a -> Buffer.add_char buf '!'; d a
  | Term.And ts -> Buffer.add_char buf '&'; List.iter d ts
  | Term.Or ts -> Buffer.add_char buf '|'; List.iter d ts
  | Term.Implies (a, b) -> Buffer.add_char buf '>'; d a; d b
  | Term.Iff (a, b) -> Buffer.add_char buf '~'; d a; d b);
  Digest.string (Buffer.contents buf)

let digest_structural =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"digest-vs-reference" ~count:300
       (QCheck.make QCheck.Gen.(pair gen_iexp gen_bform))
       (fun (a, f) ->
         String.equal (Term.digest (build_i a)) (ref_digest (build_i a))
         && String.equal (Term.digest (build_b f)) (ref_digest (build_b f))))

(* VC-cache key stability: the key for a query must not depend on how
   many unrelated terms were interned before it — a fresh process (or a
   restarted daemon) computes the same key as a long-lived one. *)
let test_vc_key_stable () =
  let mk () =
    [
      eq (add x y) (int 3);
      lt x (app "f" [ y ]);
      or_ [ bvar "p"; not_ (bvar "q") ];
    ]
  in
  let k1 = Solver.serialize_vc ~max_rounds:5000 ~minimize:true (mk ()) in
  for i = 0 to 4999 do
    ignore (add (var (Printf.sprintf "churn%d" i)) (int i))
  done;
  let k2 = Solver.serialize_vc ~max_rounds:5000 ~minimize:true (mk ()) in
  Alcotest.(check string) "key survives interning churn" k1 k2;
  let expect =
    "vc2|5000|m|" ^ String.concat "" (List.map ref_digest (mk ()))
  in
  Alcotest.(check string) "key is structure-derived" expect k2

(* ------------------------------------------------------------------ *)
(* SAT core: random CNF vs brute force, with database reduction forced.

   [max_learnts] is dropped to 2 so [reduce_db] fires on nearly every
   decision — clause deletion, watch purging, and the activity heap all
   run constantly, and the verdict must still match exhaustive
   enumeration (and on Sat, the model must satisfy every clause). *)

let gen_cnf : int list list QCheck.Gen.t =
  let open QCheck.Gen in
  let lit = map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound 7) bool in
  list_size (int_range 1 40) (list_size (int_range 1 3) lit)

let cnf_brute_sat (cnf : int list list) =
  let n = 8 in
  let sat_under assignment =
    List.for_all
      (List.exists (fun l ->
           let v = abs l - 1 in
           let bit = assignment land (1 lsl v) <> 0 in
           if l > 0 then bit else not bit))
      cnf
  in
  let rec go a = a < 1 lsl n && (sat_under a || go (a + 1)) in
  go 0

let sat_reduce_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"sat-reduce-db-vs-brute-force" ~count:300
       (QCheck.make
          ~print:(fun cnf ->
            String.concat " & "
              (List.map
                 (fun c ->
                   "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
                 cnf))
          gen_cnf)
       (fun cnf ->
         let s = Sat.create () in
         s.Sat.max_learnts <- 2;
         let enc l = Sat.lit_of_var ~neg:(l < 0) (abs l - 1) in
         let ok = List.for_all (fun c -> Sat.add_clause s (List.map enc c)) cnf in
         match (ok, if ok then Sat.solve s else Sat.Unsat) with
         | false, _ | _, Sat.Unsat -> not (cnf_brute_sat cnf)
         | _, Sat.Sat ->
             List.for_all
               (List.exists (fun l ->
                    let v = abs l - 1 in
                    let b = v < 8 && Sat.model_value s v in
                    if l > 0 then b else not b))
               cnf
         | _, (Sat.Unknown | Sat.Resource_out) -> false))

let hashcons_cases =
  [
    hashcons_physical_eq;
    hashcons_eval;
    hashcons_vars;
    hashcons_subst;
    digest_structural;
    Alcotest.test_case "vc-key-stability" `Quick test_vc_key_stable;
  ]

let session_cases =
  [
    Alcotest.test_case "euf-chain-counts" `Quick test_euf_chain_counts;
    Alcotest.test_case "pigeonhole-counts" `Quick test_pigeonhole_counts;
    Alcotest.test_case "session-euf-chain" `Quick test_session_euf_chain;
    Alcotest.test_case "session-pop-reassert" `Quick test_session_pop_reassert;
    Alcotest.test_case "session-poly-no-wrap" `Quick test_session_poly_no_wrap;
    session_differential;
  ]

let () =
  Alcotest.run "smt"
    [
      ("solver", solver_units);
      ( "model",
        [ Alcotest.test_case "model-soundness" `Quick test_model_soundness ] );
      ("simplex", [ Alcotest.test_case "units" `Quick test_simplex ]);
      ( "cc",
        [
          Alcotest.test_case "congruence" `Quick test_cc;
          Alcotest.test_case "numbers" `Quick test_cc_numbers;
        ] );
      ("sat", [ Alcotest.test_case "units" `Quick test_sat; sat_reduce_differential ]);
      ("hashcons", hashcons_cases);
      ("differential", [ differential; simplex_differential; cc_random ]);
      ("entails", entails_cases);
      ("session", session_cases);
    ]