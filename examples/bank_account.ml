(** Bank accounts with a heap-dependent global invariant.

    The motivating scenario for heap-dependent assertions: the
    interesting invariant — "the balances sum to [total]" — talks about
    *the current heap contents* of two cells at once. In stable-Iris
    style one must existentially name both balances and thread the
    equation through every step; destabilized, the spec just reads the
    heap: [!a + !b = total].

    This example verifies the transfer procedure with both spec styles
    and compares the annotation shapes, then demonstrates that a buggy
    transfer (overdraft allowed) is caught.

    Run with: dune exec examples/bank_account.exe *)

module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module Pr = Suite.Programs
open Stdx

let deref l = Baselogic.Hterm.deref (T.var l)
let sym x = HL.Val (HL.Sym x)

let show name prog =
  match
    List.for_all (fun (_, o) -> o = V.Verified) (V.verify prog)
  with
  | true -> Fmt.pr "  %-24s VERIFIED@." name
  | false ->
      let m =
        List.find_map
          (function _, V.Failed m -> Some m | _ -> None)
          (V.verify prog)
      in
      Fmt.pr "  %-24s FAILED: %s@." name (Option.value ~default:"?" m)

let () =
  Fmt.pr "== bank accounts ==@.@.";
  Fmt.pr "destabilized spec (reads the heap):@.";
  Fmt.pr "  requires … ⌜!a + !b = total⌝ ∗ ⌜0 ≤ amt ≤ !a⌝@.";
  Fmt.pr "  ensures  … ⌜!a + !b = total⌝ ∗ ⌜0 ≤ !a⌝@.@.";
  show "transfer (heap-dep)" Pr.bank.Pr.prog;
  (match Pr.bank.Pr.stable_variant with
  | Some sv -> show "transfer (stable)" sv
  | None -> ());

  (* A buggy transfer: no overdraft check in the spec. The sum is
     preserved, but the non-negativity claim must fail. *)
  let buggy =
    {
      V.pname = "transfer_overdraft";
      params = [ "a"; "b"; "amt"; "total" ];
      requires =
        A.seps
          [
            A.Exists ("va", A.points_to (T.var "a") (T.var "va"));
            A.Exists ("vb", A.points_to (T.var "b") (T.var "vb"));
            A.Pure (T.eq (T.add (deref "a") (deref "b")) (T.var "total"));
            (* missing: 0 ≤ amt ≤ !a *)
          ];
      ensures =
        A.seps
          [
            A.Exists ("wa", A.points_to (T.var "a") (T.var "wa"));
            A.Exists ("wb", A.points_to (T.var "b") (T.var "wb"));
            A.Pure (T.eq (T.add (deref "a") (deref "b")) (T.var "total"));
            A.Pure (T.le (T.int 0) (deref "a"));
          ];
      body =
        HL.Let ("x", HL.Load (sym "a"),
          HL.Let ("x'", HL.BinOp (HL.Sub, HL.Var "x", sym "amt"),
            HL.Seq (HL.Store (sym "a", HL.Var "x'"),
              HL.Let ("y", HL.Load (sym "b"),
                HL.Let ("y'", HL.BinOp (HL.Add, HL.Var "y", sym "amt"),
                  HL.Store (sym "b", HL.Var "y'"))))));
      invariants = [];
      ghost = [];
    }
  in
  Fmt.pr "@.without the overdraft precondition:@.";
  show "transfer (buggy)" { V.procs = [ buggy ]; preds = Smap.empty; invs = [] };
  Fmt.pr "@.(the sum invariant alone is preserved — dropping the@.";
  Fmt.pr " non-negativity claim from the post makes the buggy body pass:)@.";
  let sum_only =
    {
      buggy with
      V.pname = "transfer_sum_only";
      ensures =
        A.seps
          [
            A.Exists ("wa", A.points_to (T.var "a") (T.var "wa"));
            A.Exists ("wb", A.points_to (T.var "b") (T.var "wb"));
            A.Pure (T.eq (T.add (deref "a") (deref "b")) (T.var "total"));
          ];
    }
  in
  show "transfer (sum only)" { V.procs = [ sum_only ]; preds = Smap.empty; invs = [] };

  (* Run a concrete transfer. *)
  Fmt.pr "@.running transfer(#0: 100, #1: 50, amt = 30):@.";
  let body =
    Heaplang.Subst.close_expr
      [ ("a", HL.Loc 0); ("b", HL.Loc 1); ("amt", HL.Int 30) ]
      Pr.bank_proc.V.body
  in
  let main =
    HL.Seq (HL.Alloc (HL.Val (HL.Int 100)),
      HL.Seq (HL.Alloc (HL.Val (HL.Int 50)),
        HL.Seq (body,
          HL.PairE (HL.Load (HL.Val (HL.Loc 0)), HL.Load (HL.Val (HL.Loc 1))))))
  in
  match Heaplang.Interp.run main with
  | Heaplang.Interp.Value v -> Fmt.pr "  balances after: %a@." HL.pp_value v
  | Heaplang.Interp.Error m -> Fmt.pr "  error: %s@." m
  | Heaplang.Interp.Timeout -> Fmt.pr "  timeout@."
