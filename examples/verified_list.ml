(** Recursive data structures: a verified linked chain.

    Shows the predicate machinery end to end: a recursive predicate
    definition ([clist p n]: a null-terminated chain of [n] cells),
    ghost fold/unfold commands placed in the program, a recursively
    verified procedure, and a concrete run over a freshly-built chain.

    Run with: dune exec examples/verified_list.exe *)

module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module Pr = Suite.Programs

let () =
  Fmt.pr "== verified linked chain ==@.@.";
  let def = Stdx.Smap.find "clist" Pr.clist_preds in
  Fmt.pr "predicate clist(%s):@.  @[%a@]@.@."
    (String.concat ", " def.A.params)
    A.pp def.A.body;
  Fmt.pr "procedure length(p, n):@.";
  Fmt.pr "  requires clist(p, n) ∗ ⌜0 ≤ n⌝@.";
  Fmt.pr "  ensures  clist(p, n) ∗ ⌜result = n⌝@.@.";

  (match V.verify Pr.list_length.Pr.prog with
  | results when List.for_all (fun (_, o) -> o = V.Verified) results ->
      Fmt.pr "length: VERIFIED (recursively, against its own spec)@."
  | results ->
      List.iter
        (function
          | name, V.Failed m -> Fmt.pr "%s FAILED: %s@." name m
          | _ -> ())
        results);

  (* A wrong spec must fail: off-by-one length. *)
  let off_by_one =
    {
      Pr.length_proc with
      V.pname = "length_bug";
      ensures =
        A.Sep
          ( A.Pred ("clist", [ T.var "p"; T.var "n" ]),
            A.Pure (T.eq (T.var "result") (T.add (T.var "n") (T.int 1))) );
    }
  in
  (match
     V.verify_proc
       { V.procs = [ off_by_one ]; preds = Pr.clist_preds; invs = [] }
       off_by_one
   with
  | V.Failed _ -> Fmt.pr "length+1:  correctly rejected@."
  | V.Verified -> Fmt.pr "length+1:  VERIFIED (bug!)@."
  | o -> Fmt.pr "length+1:  %a@." V.pp_outcome o);

  (* Build the chain #2 -> #1 -> #0 -> nil at runtime and measure it
     with the *executable* version of length. *)
  Fmt.pr "@.running length on a concrete 3-chain:@.";
  let open HL in
  let length_fun =
    (* rec len p = if p == -1 then 0 else 1 + len !p *)
    Rec
      ( Some "len",
        "p",
        If
          ( BinOp (Eq, Var "p", Val (Int (-1))),
            Val (Int 0),
            BinOp (Add, Val (Int 1), App (Var "len", Load (Var "p"))) ) )
  in
  let main =
    (* cells hold the next pointer; -1 terminates *)
    Let ("c0", Alloc (Val (Int (-1))),
      Let ("c1", Alloc (Var "c0"),
        Let ("c2", Alloc (Var "c1"),
          App (length_fun, Var "c2"))))
  in
  match Heaplang.Interp.run main with
  | Heaplang.Interp.Value v -> Fmt.pr "  length = %a@." pp_value v
  | Heaplang.Interp.Error m -> Fmt.pr "  error: %s@." m
  | Heaplang.Interp.Timeout -> Fmt.pr "  timeout@."
