(** Textual front-end: write the program as a string, parse it, verify
    it, run it.

    Run with: dune exec examples/parsed_program.exe *)

module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec

(* The source, spec, and procedure live in the {!Suite.Examples}
   registry (as [absdiff]), where [daenerys lint] sweeps them too. *)
let src = Suite.Examples.absdiff_src

let () =
  Fmt.pr "== parsed program ==@.source:%s@." src;
  let proc = Suite.Examples.absdiff_proc in
  let body = proc.V.body in
  Fmt.pr "parsed:@.  @[%a@]@.@." HL.pp_expr body;
  (match V.verify_proc Suite.Examples.absdiff proc with
  | V.Verified -> Fmt.pr "verifier: VERIFIED@."
  | o -> Fmt.pr "verifier: %a@." V.pp_outcome o);
  let closed =
    Heaplang.Subst.close_expr [ ("a", HL.Loc 0); ("b", HL.Loc 1) ] body
  in
  let main =
    HL.Seq
      ( HL.Alloc (HL.Val (HL.Int 3)),
        HL.Seq (HL.Alloc (HL.Val (HL.Int 10)), closed) )
  in
  match Heaplang.Interp.run main with
  | Heaplang.Interp.Value v ->
      Fmt.pr "run (a=3, b=10): %a@." HL.pp_value v
  | Heaplang.Interp.Error m -> Fmt.pr "error: %s@." m
  | Heaplang.Interp.Timeout -> Fmt.pr "timeout@."
