(** Quickstart: verify a small program two ways, then run it.

    1. The automated verifier (the paper's system): write a spec with
       heap-dependent assertions, get a yes/no in milliseconds.
    2. The certified baseline: the same triple proved as a kernel
       theorem, one rule at a time.
    3. Execute the verified program on concrete inputs.

    Run with: dune exec examples/quickstart.exe *)

module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module P = Proofmode.Prove

(* The program: increment a cell twice.

     let x = !l in l <- x + 1;
     let y = !l in l <- y + 1;
     !l

   The program, the destabilized spec ([!l = v0 + 2] reads the heap
   directly), and the procedure all live in the {!Suite.Examples}
   registry, where [daenerys lint] sweeps them too. *)
let body = Suite.Examples.incr2_body
let pre = Suite.Examples.incr2_pre
let post = Suite.Examples.incr2_post

let () =
  Fmt.pr "== quickstart: increment twice ==@.";
  Fmt.pr "program:@.  @[%a@]@." HL.pp_expr body;
  Fmt.pr "pre:  %a@." A.pp pre;
  Fmt.pr "post: %a@.@." A.pp post;

  (* 1. Automated verification. *)
  let proc = Suite.Examples.incr2_proc in
  let vstats = Verifier.Vstats.create () in
  Smt.Stats.reset ();
  (match V.verify_proc ~stats:vstats Suite.Examples.incr2 proc with
  | V.Verified -> Fmt.pr "[auto]     VERIFIED (%d obligations, %d SMT queries)@."
                    vstats.Verifier.Vstats.obligations
                    (Smt.Stats.snapshot ()).Smt.Stats.queries
  | o -> Fmt.pr "[auto]     %a@." V.pp_outcome o);

  (* 2. The certified baseline: same triple as a kernel theorem. *)
  Baselogic.Kernel.reset_rule_count ();
  (match P.prove_triple ~pre body "result" post with
  | thm ->
      Fmt.pr "[baseline] PROVED as a kernel theorem (%d rules):@.  @[%a@]@."
        (Baselogic.Kernel.rule_count ())
        Baselogic.Kernel.pp thm
  | exception P.Tactic_error m -> Fmt.pr "[baseline] FAILED: %s@." m);

  (* 3. Run it: the verified program, on a real heap. *)
  let closed = Heaplang.Subst.close_expr [ ("l", HL.Loc 0); ("v0", HL.Int 40) ] body in
  let main = HL.Seq (HL.Alloc (HL.Val (HL.Int 40)), closed) in
  match Heaplang.Interp.run main with
  | Heaplang.Interp.Value v -> Fmt.pr "[run]      l starts at 40; result = %a@." HL.pp_value v
  | Heaplang.Interp.Error m -> Fmt.pr "[run]      runtime error: %s@." m
  | Heaplang.Interp.Timeout -> Fmt.pr "[run]      timeout@."
