(** Quickstart: verify a small program two ways, then run it.

    1. The automated verifier (the paper's system): write a spec with
       heap-dependent assertions, get a yes/no in milliseconds.
    2. The certified baseline: the same triple proved as a kernel
       theorem, one rule at a time.
    3. Execute the verified program on concrete inputs.

    Run with: dune exec examples/quickstart.exe *)

module A = Baselogic.Assertion
module T = Smt.Term
module HL = Heaplang.Ast
module V = Verifier.Exec
module P = Proofmode.Prove
open Stdx

(* The program: increment a cell twice.

     let x = !l in l <- x + 1;
     let y = !l in l <- y + 1;
     !l                                                              *)
let sym x = HL.Val (HL.Sym x)

let body =
  HL.Let ("x", HL.Load (sym "l"),
    HL.Let ("x1", HL.BinOp (HL.Add, HL.Var "x", HL.Val (HL.Int 1)),
      HL.Seq (HL.Store (sym "l", HL.Var "x1"),
        HL.Let ("y", HL.Load (sym "l"),
          HL.Let ("y1", HL.BinOp (HL.Add, HL.Var "y", HL.Val (HL.Int 1)),
            HL.Seq (HL.Store (sym "l", HL.Var "y1"),
                    HL.Load (sym "l")))))))

(* The spec, destabilized style: the postcondition reads the heap
   directly — [!l = v0 + 2] — instead of naming the final value. *)
let deref l = Baselogic.Hterm.deref (T.var l)

let pre = A.points_to (T.var "l") (T.var "v0")

let post =
  A.Sep
    ( A.Exists ("w", A.points_to (T.var "l") (T.var "w")),
      A.Pure
        (T.and_
           [
             T.eq (deref "l") (T.add (T.var "v0") (T.int 2));
             T.eq (T.var "result") (T.add (T.var "v0") (T.int 2));
           ]) )

let () =
  Fmt.pr "== quickstart: increment twice ==@.";
  Fmt.pr "program:@.  @[%a@]@." HL.pp_expr body;
  Fmt.pr "pre:  %a@." A.pp pre;
  Fmt.pr "post: %a@.@." A.pp post;

  (* 1. Automated verification. *)
  let proc =
    { V.pname = "incr2"; params = [ "l"; "v0" ]; requires = pre;
      ensures = post; body; invariants = []; ghost = [] }
  in
  let vstats = Verifier.Vstats.create () in
  Smt.Stats.reset ();
  (match V.verify_proc ~stats:vstats { V.procs = [ proc ]; preds = Smap.empty } proc with
  | V.Verified -> Fmt.pr "[auto]     VERIFIED (%d obligations, %d SMT queries)@."
                    vstats.Verifier.Vstats.obligations
                    (Smt.Stats.snapshot ()).Smt.Stats.queries
  | V.Failed m -> Fmt.pr "[auto]     FAILED: %s@." m);

  (* 2. The certified baseline: same triple as a kernel theorem. *)
  Baselogic.Kernel.reset_rule_count ();
  (match P.prove_triple ~pre body "result" post with
  | thm ->
      Fmt.pr "[baseline] PROVED as a kernel theorem (%d rules):@.  @[%a@]@."
        (Baselogic.Kernel.rule_count ())
        Baselogic.Kernel.pp thm
  | exception P.Tactic_error m -> Fmt.pr "[baseline] FAILED: %s@." m);

  (* 3. Run it: the verified program, on a real heap. *)
  let closed = Heaplang.Subst.close_expr [ ("l", HL.Loc 0); ("v0", HL.Int 40) ] body in
  let main = HL.Seq (HL.Alloc (HL.Val (HL.Int 40)), closed) in
  match Heaplang.Interp.run main with
  | Heaplang.Interp.Value v -> Fmt.pr "[run]      l starts at 40; result = %a@." HL.pp_value v
  | Heaplang.Interp.Error m -> Fmt.pr "[run]      runtime error: %s@." m
  | Heaplang.Interp.Timeout -> Fmt.pr "[run]      timeout@."
